//! Availability under sustained churn: how often a constructor's output
//! is stable while nodes keep arriving and crashing, and how fast it
//! re-stabilizes once the stream ends.
//!
//! Where [`repair`](crate::repair) measures recovery from a *one-shot*
//! burst, this module measures life under an *open-ended* fault stream
//! — the continuous-churn regime of NETCS-style workloads. A
//! [`ChurnPlan`] compiles the stream into a draw-indexed
//! [`FaultPlan`](netcon_core::FaultPlan), so the measurement rides
//! [`Engine::auto_faulted`] exactly like every other sweep: any of the
//! four engines produces the identical event schedule.
//!
//! The estimator is window-exact rather than per-draw sampled: between
//! consecutive churn events the run is fault-free, so once the
//! fault-mode predicate holds at a window's end, the output graph has
//! been its stable final form since the engine's last output-graph
//! change — every draw from that change to the window end was
//! available. [`availability`] therefore attributes
//! `window_end − max(last_output_change, window_start)` available draws
//! per stable window and nothing per unstable window, with no sampling
//! error beyond the conservative drop of state-only churn (a window
//! whose output graph is finished but whose states still walk counts
//! only from the predicate's perspective at the window end).

use netcon_core::{ChurnPlan, CompiledTable, Engine, EngineView, FaultState, RuleProtocol};

use crate::sweep::{sweep, SweepConfig, SweepTable};

/// One availability measurement under a churn stream (see
/// [`availability`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityResult {
    /// Draws during the churn horizon on which the output graph was its
    /// (then-current) stable form.
    pub available_draws: u64,
    /// The churn horizon: draws from 0 to the last scheduled event.
    pub total_draws: u64,
    /// Steps from the last churn event to re-stabilization, or `None`
    /// if the run did not re-stabilize within its budget.
    pub repair: Option<u64>,
}

impl AvailabilityResult {
    /// `available_draws / total_draws` (1 for an empty stream: a run
    /// with no churn is vacuously available).
    #[must_use]
    pub fn fraction_available(&self) -> f64 {
        if self.total_draws == 0 {
            1.0
        } else {
            self.available_draws as f64 / self.total_draws as f64
        }
    }
}

/// Runs `protocol` under `plan`'s churn stream and measures the
/// fraction of draws on which the output was stable, plus the
/// time-to-first-repair after the stream ends.
///
/// `stable` is the protocol's fault-mode predicate (stability relative
/// to the alive population), evaluated at the end of every inter-event
/// window — see the [module docs](self) for why that is exact. Windows
/// are cut at [`FaultPlan::boundary_times`](netcon_core::FaultPlan::boundary_times),
/// which covers scheduled events *and* adversary decision draws, so the
/// estimator stays window-exact under an adaptive
/// [`AdversaryPlan`](netcon_core::AdversaryPlan). After
/// the last event the engine runs up to `max_steps` more draws for the
/// repair phase; not re-stabilizing is reported as `repair: None`, not
/// a panic (a protocol that cannot repair the final configuration is a
/// measurement, not an error).
pub fn availability(
    protocol: &RuleProtocol,
    n: usize,
    seed: u64,
    plan: netcon_core::FaultPlan,
    stable: impl Fn(&EngineView<'_, CompiledTable>, &FaultState) -> bool,
    max_steps: u64,
) -> AvailabilityResult {
    // Boundary times cover scheduled events *and* adversary decision
    // draws, so each window is fault-free even under an adaptive plan.
    let times: Vec<u64> = plan.boundary_times();
    let total_draws = times.last().copied().unwrap_or(0);
    let mut eng = Engine::auto_faulted(protocol.compile(), n, seed, plan);
    let mut available = 0u64;
    let mut window_start = 0u64;
    for &t in &times {
        // Draws `window_start..t` are fault-free: run to just before
        // the events at `t` apply and judge the window (`run_until` at
        // the current step count is a pure peek — zero draws).
        if t > window_start {
            eng.run_faulted_to(t - 1);
            let fs = eng.fault_state().expect("faulted engine").clone();
            let now = eng.steps();
            if eng
                .run_until(|v| stable(v, &fs), now)
                .converged_at()
                .is_some()
            {
                available += t - eng.last_output_change().max(window_start);
            }
        }
        // Crossing `t` applies the events scheduled there.
        eng.run_faulted_to(t);
        window_start = t;
    }
    let fs = eng.fault_state().expect("faulted engine").clone();
    debug_assert_eq!(fs.next_at(), None, "plan exhausted at the horizon");
    let end = eng.steps();
    let repair = eng
        .run_until(|v| stable(v, &fs), end.saturating_add(max_steps))
        .converged_at()
        .map(|at| at.saturating_sub(end));
    AvailabilityResult {
        available_draws: available,
        total_draws,
        repair,
    }
}

/// Sweeps [`availability`]'s `fraction_available` over the configured
/// sizes and trials: each trial reseeds `churn` from its own sweep seed
/// and compiles it for that trial's size, so streams are independent
/// across trials and proportionate across sizes.
pub fn sweep_availability<P>(
    cfg: &SweepConfig,
    protocol: &RuleProtocol,
    churn: ChurnPlan,
    stable: P,
    max_steps: u64,
) -> SweepTable
where
    P: Fn(&EngineView<'_, CompiledTable>, &FaultState) -> bool + Sync,
{
    sweep(cfg, |n, seed| {
        let plan = churn.reseeded(seed).compile(n);
        availability(protocol, n, seed, plan, &stable, max_steps).fraction_available()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::FaultPlan;

    /// A local FT-star transcription (the analysis crate does not
    /// depend on `netcon-protocols`; tests mirror `repair.rs`'s
    /// self-contained style).
    fn star() -> RuleProtocol {
        use netcon_core::{Link, ProtocolBuilder};
        let mut b = ProtocolBuilder::new("ft-star");
        let c = b.state("c");
        let p = b.state("p");
        b.rule((c, c, Link::Off), (c, p, Link::On));
        b.rule((p, p, Link::On), (p, p, Link::Off));
        b.rule((c, p, Link::Off), (c, p, Link::On));
        b.rule((c, c, Link::On), (c, p, Link::On));
        b.on_crash(p, c);
        b.build().expect("valid")
    }

    /// Unique alive centre of full alive degree.
    fn star_stable(v: &EngineView<'_, CompiledTable>, fs: &FaultState) -> bool {
        let centres: Vec<usize> = (0..v.n())
            .filter(|&u| fs.is_alive(u) && v.state_index(u) == 0)
            .collect();
        let alive = fs.alive_count();
        centres.len() == 1
            && alive >= 1
            && v.active_count() == alive - 1
            && v.degree(centres[0]) == alive - 1
    }

    #[test]
    fn empty_stream_is_fully_available() {
        let r = availability(&star(), 8, 1, FaultPlan::new(0), star_stable, 10_000_000);
        assert_eq!(r.total_draws, 0);
        assert_eq!(r.available_draws, 0);
        assert!((r.fraction_available() - 1.0).abs() < f64::EPSILON);
        assert!(r.repair.is_some(), "fault-free run stabilizes");
    }

    #[test]
    fn churned_star_is_mostly_available_and_repairs() {
        use netcon_core::ChurnPlan;
        let n = 10;
        let plan = ChurnPlan::new(7)
            .arrival_rate(5e-5)
            .departure_rate(5e-5)
            .min_alive(5)
            .horizon(200_000)
            .compile(n);
        assert!(!plan.is_empty(), "stream produces events at these rates");
        let r = availability(&star(), n, 3, plan, star_stable, u64::MAX);
        assert!(r.total_draws > 0);
        assert!(r.available_draws <= r.total_draws);
        assert!(
            r.fraction_available() > 0.5,
            "a 2-state star at these gentle rates is mostly up: {r:?}"
        );
        assert!(r.repair.is_some(), "FT-star repairs the final burst");
    }

    #[test]
    fn zero_length_horizon_is_defined_not_nan() {
        // Regression: a plan whose only boundaries sit at draw 0 (or an
        // empty plan) must report a defined fraction, never NaN from a
        // 0/0 division.
        let r = AvailabilityResult {
            available_draws: 0,
            total_draws: 0,
            repair: None,
        };
        assert!(!r.fraction_available().is_nan());
        assert!((r.fraction_available() - 1.0).abs() < f64::EPSILON);

        // End-to-end: an adversary whose single decision draw is at 0
        // yields a zero-length horizon through the real pipeline.
        use netcon_core::{AdversaryPlan, AdversaryPolicy, Cadence, FaultPlan};
        let plan = FaultPlan::new(11).with_adversary(
            AdversaryPlan::new(Cadence::Burst(vec![0]))
                .policy(AdversaryPolicy::CrashMaxDegree),
        );
        assert_eq!(plan.boundary_times(), vec![0]);
        let r = availability(&star(), 8, 2, plan, star_stable, u64::MAX);
        assert_eq!(r.total_draws, 0);
        assert!(!r.fraction_available().is_nan());
        assert!((r.fraction_available() - 1.0).abs() < f64::EPSILON);
        assert!(r.repair.is_some(), "star repairs the draw-0 crash");
    }

    #[test]
    fn adversary_decisions_cut_the_windows() {
        use netcon_core::{AdversaryPlan, AdversaryPolicy, Cadence, FaultPlan};
        let n = 10;
        let plan = FaultPlan::new(5).with_adversary(
            AdversaryPlan::new(Cadence::Periodic {
                start: 20_000,
                every: 20_000,
                count: 4,
            })
            .policy(AdversaryPolicy::CrashMaxDegree)
            .min_alive(5),
        );
        assert_eq!(plan.boundary_times().len(), 4);
        let r = availability(&star(), n, 9, plan, star_stable, u64::MAX);
        assert_eq!(r.total_draws, 80_000);
        assert!(r.available_draws <= r.total_draws);
        assert!(
            r.fraction_available() > 0.0,
            "the star re-forms between periodic centre crashes: {r:?}"
        );
        assert!(r.repair.is_some(), "FT-star repairs the final crash");
    }

    #[test]
    fn availability_is_reproducible_and_bounded() {
        use netcon_core::ChurnPlan;
        let churn = ChurnPlan::new(0)
            .arrival_rate(1e-4)
            .departure_rate(1e-4)
            .min_alive(4)
            .horizon(50_000);
        let cfg = SweepConfig {
            sizes: vec![8, 12],
            trials: 3,
            base_seed: 5,
        };
        let run = || sweep_availability(&cfg, &star(), churn, star_stable, u64::MAX);
        let (a, b) = (run(), run());
        assert_eq!(a.rows[0].samples, b.rows[0].samples);
        assert_eq!(a.rows[1].samples, b.rows[1].samples);
        for row in &a.rows {
            for &s in &row.samples {
                assert!((0.0..=1.0).contains(&s), "fraction out of range: {s}");
            }
        }
    }
}
