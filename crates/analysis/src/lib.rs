//! Statistics, parallel trial sweeps, and power-law fits for
//! network-constructor experiments.
//!
//! The paper proves asymptotic Θ/Ω/O bounds on expected convergence time
//! under the uniform random scheduler. This crate provides the empirical
//! counterpart used by the benchmark harness:
//!
//! * [`stats`] — summary statistics with confidence intervals;
//! * [`sweep`] — run a seeded workload for many trials across a ladder of
//!   population sizes, in parallel (crossbeam scoped threads);
//! * [`repair`] — perturb a stabilized network with a seeded fault burst
//!   and measure the steps to re-stabilize, on any engine;
//! * [`availability`] — fraction-of-draws-stable under a sustained
//!   [`ChurnPlan`](netcon_core::ChurnPlan) stream, plus
//!   time-to-first-repair once the stream ends;
//! * [`knee`] — availability-vs-fault-rate ladders (Poisson or
//!   adaptive-adversarial) with two-segment log–log knee detection;
//! * [`fit`] — least-squares log–log fits to estimate the polynomial
//!   exponent of a measured time curve, with and without a `log n`
//!   correction term.
//!
//! The crate is deliberately independent of the model crates: a workload
//! is just a function from `(n, seed)` to a measured value.
//!
//! # Example
//!
//! ```
//! use netcon_analysis::{fit::fit_power_law, sweep::{sweep, SweepConfig}};
//!
//! // A synthetic "protocol" whose expected time is exactly n².
//! let cfg = SweepConfig { sizes: vec![16, 32, 64], trials: 8, base_seed: 1 };
//! let table = sweep(&cfg, |n, _seed| (n * n) as f64);
//! let fit = fit_power_law(&table.points());
//! assert!((fit.exponent - 2.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod fit;
pub mod knee;
pub mod repair;
pub mod stats;
pub mod sweep;
pub mod table;
