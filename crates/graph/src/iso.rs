//! Exact graph-isomorphism testing.
//!
//! Definition 2 of the paper says an execution *constructs* a graph `G` if
//! its output stabilizes to a graph isomorphic to `G`; Graph-Replication
//! (Protocol 9) must produce a replica isomorphic to its input. This module
//! provides the backtracking isomorphism test used to verify such results.
//! It refines candidates by degree and neighbour-degree multisets before
//! searching, which keeps it fast for the small-to-medium graphs the test
//! suites compare (n up to a few dozen).

use crate::EdgeSet;

/// Whether `a` and `b` are isomorphic.
///
/// # Example
///
/// ```
/// use netcon_graph::{iso::are_isomorphic, EdgeSet};
///
/// let p3 = EdgeSet::from_edges(3, [(0, 1), (1, 2)]);
/// let p3_relabeled = EdgeSet::from_edges(3, [(1, 0), (0, 2)]);
/// let k3 = EdgeSet::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// assert!(are_isomorphic(&p3, &p3_relabeled));
/// assert!(!are_isomorphic(&p3, &k3));
/// ```
#[must_use]
pub fn are_isomorphic(a: &EdgeSet, b: &EdgeSet) -> bool {
    isomorphism(a, b).is_some()
}

/// Finds an isomorphism from `a` to `b`, i.e. a permutation `f` of node
/// indices with `{u, v}` active in `a` iff `{f(u), f(v)}` active in `b`.
///
/// Returns `None` if the graphs are not isomorphic (including when they
/// have different orders).
#[must_use]
pub fn isomorphism(a: &EdgeSet, b: &EdgeSet) -> Option<Vec<usize>> {
    if a.n() != b.n() || a.active_count() != b.active_count() {
        return None;
    }
    let n = a.n();
    if n == 0 {
        return Some(Vec::new());
    }
    if a.degree_sequence() != b.degree_sequence() {
        return None;
    }
    // Refinement signatures: (degree, sorted multiset of neighbour degrees).
    let sig = |es: &EdgeSet, u: usize| {
        let mut nd: Vec<u32> = es.neighbors(u).map(|v| es.degree(v)).collect();
        nd.sort_unstable();
        (es.degree(u), nd)
    };
    let sig_a: Vec<_> = (0..n).map(|u| sig(a, u)).collect();
    let sig_b: Vec<_> = (0..n).map(|u| sig(b, u)).collect();
    {
        let mut sa = sig_a.clone();
        let mut sb = sig_b.clone();
        sa.sort();
        sb.sort();
        if sa != sb {
            return None;
        }
    }

    // Order the search by most-constrained-first: rare signatures and high
    // degrees first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(sig_a[u].0));

    let mut mapping = vec![usize::MAX; n];
    let mut used = vec![false; n];
    if assign(a, b, &sig_a, &sig_b, &order, 0, &mut mapping, &mut used) {
        Some(mapping)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn assign(
    a: &EdgeSet,
    b: &EdgeSet,
    sig_a: &[(u32, Vec<u32>)],
    sig_b: &[(u32, Vec<u32>)],
    order: &[usize],
    depth: usize,
    mapping: &mut [usize],
    used: &mut [bool],
) -> bool {
    if depth == order.len() {
        return true;
    }
    let u = order[depth];
    for w in 0..b.n() {
        if used[w] || sig_a[u] != sig_b[w] {
            continue;
        }
        // Consistency with already-mapped nodes.
        let consistent = order[..depth].iter().all(|&x| {
            a.is_active(u, x) == b.is_active(w, mapping[x])
        });
        if !consistent {
            continue;
        }
        mapping[u] = w;
        used[w] = true;
        if assign(a, b, sig_a, sig_b, order, depth + 1, mapping, used) {
            return true;
        }
        mapping[u] = usize::MAX;
        used[w] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Relabels `es` by a random permutation.
    fn shuffle(es: &EdgeSet, rng: &mut SmallRng) -> EdgeSet {
        let n = es.n();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(rng);
        let mut out = EdgeSet::new(n);
        for (u, v) in es.active_edges() {
            out.activate(perm[u], perm[v]);
        }
        out
    }

    #[test]
    fn identical_graphs_are_isomorphic() {
        let es = EdgeSet::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(are_isomorphic(&es, &es));
    }

    #[test]
    fn random_relabelings_are_isomorphic() {
        let mut rng = SmallRng::seed_from_u64(11);
        for seed in 0..20 {
            let g = crate::gnp::gnp_half(10, &mut SmallRng::seed_from_u64(seed));
            let h = shuffle(&g, &mut rng);
            let f = isomorphism(&g, &h).expect("relabelling must be isomorphic");
            for (u, v) in g.active_edges() {
                assert!(h.is_active(f[u], f[v]));
            }
        }
    }

    #[test]
    fn distinguishes_line_from_star() {
        let line = EdgeSet::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let star = EdgeSet::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert!(!are_isomorphic(&line, &star));
    }

    #[test]
    fn distinguishes_same_degree_sequence() {
        // C6 vs 2×C3: both 2-regular on 6 nodes.
        let c6 = EdgeSet::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)));
        let c3x2 = EdgeSet::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert!(!are_isomorphic(&c6, &c3x2));
    }

    #[test]
    fn different_orders_are_not_isomorphic() {
        assert!(!are_isomorphic(&EdgeSet::new(3), &EdgeSet::new(4)));
    }
}
