//! Connected components of the active subgraph, plus a union–find.

use crate::EdgeSet;

/// Returns the connected components of the active subgraph, each as a sorted
/// list of node indices. Isolated nodes form singleton components.
///
/// # Example
///
/// ```
/// use netcon_graph::{components::connected_components, EdgeSet};
///
/// let es = EdgeSet::from_edges(5, [(0, 2), (2, 4)]);
/// let comps = connected_components(&es);
/// assert_eq!(comps, vec![vec![0, 2, 4], vec![1], vec![3]]);
/// ```
#[must_use]
pub fn connected_components(es: &EdgeSet) -> Vec<Vec<usize>> {
    let n = es.n();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        stack.push(start);
        let mut comp = Vec::new();
        while let Some(u) = stack.pop() {
            comp.push(u);
            for v in es.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Whether the active subgraph is connected (all `n` nodes in one component).
///
/// The empty and singleton graphs count as connected.
#[must_use]
pub fn is_connected(es: &EdgeSet) -> bool {
    let n = es.n();
    if n <= 1 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for v in es.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == n
}

/// A union–find (disjoint-set) structure with union by size and path
/// halving.
///
/// Used for incremental connectivity bookkeeping in analysis harnesses.
///
/// # Example
///
/// ```
/// use netcon_graph::components::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// Creates a union–find over `n` singleton elements.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// The representative of `x`'s component.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the components of `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same component.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The number of components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// The size of `x`'s component.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_empty_graph_are_singletons() {
        let es = EdgeSet::new(4);
        assert_eq!(connected_components(&es).len(), 4);
        assert!(!is_connected(&es));
    }

    #[test]
    fn connected_detects_spanning_tree() {
        let es = EdgeSet::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(is_connected(&es));
        assert_eq!(connected_components(&es).len(), 1);
    }

    #[test]
    fn trivial_graphs_are_connected() {
        assert!(is_connected(&EdgeSet::new(0)));
        assert!(is_connected(&EdgeSet::new(1)));
        assert!(!is_connected(&EdgeSet::new(2)));
    }

    #[test]
    fn union_find_tracks_sizes() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already joined");
        assert_eq!(uf.component_size(2), 3);
        assert_eq!(uf.component_count(), 4);
    }
}
