//! Graph substrate for the network-constructor model.
//!
//! The network-constructor model of Michail & Spirakis (PODC 2014) runs on a
//! complete interaction graph over `n` processes in which every unordered
//! pair `{u, v}` carries a binary edge state (active/inactive). This crate
//! provides the data structures and graph algorithms every other crate in
//! the workspace builds on:
//!
//! * [`EdgeSet`] — a dense, pair-indexed bitset over the `n(n−1)/2`
//!   undirected edges with maintained degrees and active-edge count;
//! * [`properties`] — predicates for every target shape in the paper
//!   (spanning line/ring/star, cycle cover, k-regular connected, clique
//!   partitions, matchings);
//! * [`components`] — connected components and a union–find;
//! * [`gnp`] — the G(n, p) random-graph model used by the universal
//!   constructors (§6 of the paper);
//! * [`iso`] — exact graph-isomorphism testing for verifying constructions
//!   "up to isomorphism" (Definition 2 of the paper);
//! * [`matrix`] — adjacency-matrix encoding used as Turing-machine input.
//!
//! # Example
//!
//! ```
//! use netcon_graph::EdgeSet;
//! use netcon_graph::properties::is_spanning_line;
//!
//! let mut es = EdgeSet::new(4);
//! es.activate(0, 1);
//! es.activate(1, 2);
//! es.activate(2, 3);
//! assert!(is_spanning_line(&es));
//! assert_eq!(es.degree(1), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod edgeset;

pub mod components;
pub mod gnp;
pub mod iso;
pub mod matrix;
pub mod properties;

pub use edgeset::{ActiveEdges, EdgeSet, Neighbors};
