//! Dense bitset over the undirected edges of a complete graph.

use std::fmt;

/// The set of active edges over a population of `n` nodes.
///
/// Nodes are identified by indices `0..n`. Every unordered pair `{u, v}`
/// with `u != v` is an edge of the complete interaction graph and is either
/// *active* (state 1 in the paper) or *inactive* (state 0). The set
/// maintains per-node degrees (number of incident active edges) and the
/// total number of active edges, so the shape predicates in
/// [`properties`](crate::properties) can run degree checks in `O(n)`.
///
/// Internally edges are stored twice: in a `u64` bitset indexed by the
/// standard triangular pair index (the canonical form behind
/// [`pair_index`](Self::pair_index) / [`active_edges`](Self::active_edges)),
/// and in a redundant square adjacency bitset whose *contiguous* per-node
/// rows make [`row`](Self::row) and [`neighbors`](Self::neighbors)
/// sequential word scans — the access pattern the simulation engines'
/// per-node rescans are bound on. Together they cost `3·n²/16` bytes plus
/// the degree vector.
///
/// # Example
///
/// ```
/// use netcon_graph::EdgeSet;
///
/// let mut es = EdgeSet::new(5);
/// assert!(!es.is_active(0, 4));
/// es.activate(0, 4);
/// es.activate(4, 1); // order of endpoints is irrelevant
/// assert!(es.is_active(4, 0));
/// assert_eq!(es.degree(4), 2);
/// assert_eq!(es.active_count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct EdgeSet {
    n: usize,
    words: Vec<u64>,
    /// Square adjacency mirror: bit `v` of words
    /// `rows[u * row_words .. (u + 1) * row_words]` is the state of
    /// `{u, v}`.
    rows: Vec<u64>,
    /// Words per row of the square mirror.
    row_words: usize,
    degrees: Vec<u32>,
    active: usize,
}

impl EdgeSet {
    /// Creates an edge set over `n` nodes with every edge inactive.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let bits = n * n.saturating_sub(1) / 2;
        let row_words = n.div_ceil(64);
        Self {
            n,
            words: vec![0u64; bits.div_ceil(64)],
            rows: vec![0u64; n * row_words],
            row_words,
            degrees: vec![0; n],
            active: 0,
        }
    }

    /// Creates an edge set with the given edges active.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range or an edge is a self-loop.
    #[must_use]
    pub fn from_edges<I: IntoIterator<Item = (usize, usize)>>(n: usize, edges: I) -> Self {
        let mut es = Self::new(n);
        for (u, v) in edges {
            es.activate(u, v);
        }
        es
    }

    /// The number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The number of undirected edges of the complete interaction graph,
    /// i.e. `n(n−1)/2`.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.n * self.n.saturating_sub(1) / 2
    }

    /// The triangular index of the unordered pair `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either endpoint is out of range.
    #[must_use]
    pub fn pair_index(&self, u: usize, v: usize) -> usize {
        assert!(u != v, "self-loops are not part of the model");
        assert!(u < self.n && v < self.n, "node index out of range");
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        // Row a starts after rows 0..a, row a has entries for b in a+1..n.
        a * (2 * self.n - a - 1) / 2 + (b - a - 1)
    }

    /// The unordered pair corresponding to a triangular index.
    ///
    /// Inverse of [`pair_index`](Self::pair_index); returns `(u, v)` with
    /// `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= pair_count()`.
    #[must_use]
    pub fn pair_at(&self, idx: usize) -> (usize, usize) {
        assert!(idx < self.pair_count(), "pair index out of range");
        // Find the row by walking; rows shrink so this is O(n) worst case,
        // which is fine for the decode-rarely use cases (tests, tracing).
        let mut row = 0usize;
        let mut start = 0usize;
        loop {
            let row_len = self.n - row - 1;
            if idx < start + row_len {
                return (row, row + 1 + (idx - start));
            }
            start += row_len;
            row += 1;
        }
    }

    /// Whether the edge `{u, v}` is active.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either endpoint is out of range.
    #[must_use]
    pub fn is_active(&self, u: usize, v: usize) -> bool {
        let i = self.pair_index(u, v);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets the state of edge `{u, v}`, returning the previous state.
    pub fn set(&mut self, u: usize, v: usize, active: bool) -> bool {
        let i = self.pair_index(u, v);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let was = *word & mask != 0;
        if was != active {
            *word ^= mask;
            self.rows[u * self.row_words + v / 64] ^= 1u64 << (v % 64);
            self.rows[v * self.row_words + u / 64] ^= 1u64 << (u % 64);
            if active {
                self.degrees[u] += 1;
                self.degrees[v] += 1;
                self.active += 1;
            } else {
                self.degrees[u] -= 1;
                self.degrees[v] -= 1;
                self.active -= 1;
            }
        }
        was
    }

    /// Activates edge `{u, v}` (no-op if already active).
    pub fn activate(&mut self, u: usize, v: usize) {
        self.set(u, v, true);
    }

    /// Deactivates edge `{u, v}` (no-op if already inactive).
    pub fn deactivate(&mut self, u: usize, v: usize) {
        self.set(u, v, false);
    }

    /// The number of active edges incident to `u`.
    #[must_use]
    pub fn degree(&self, u: usize) -> u32 {
        self.degrees[u]
    }

    /// The total number of active edges.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Deactivates every edge.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.rows.fill(0);
        self.degrees.fill(0);
        self.active = 0;
    }

    /// Iterator over the active neighbours of `u`, in increasing order —
    /// a `trailing_zeros` word scan over the node's contiguous adjacency
    /// row: O(n/64 + degree).
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[must_use]
    pub fn neighbors(&self, u: usize) -> Neighbors<'_> {
        assert!(u < self.n, "node index out of range");
        let words = &self.rows[u * self.row_words..(u + 1) * self.row_words];
        Neighbors {
            words,
            word: words.first().copied().unwrap_or(0),
            word_idx: 0,
            remaining: self.degrees[u],
        }
    }

    /// Iterator over `(v, active)` for every node `v ≠ u`, in increasing
    /// `v` — a sequential scan of the node's contiguous adjacency row,
    /// the access pattern of the event-driven engine's effective-pair
    /// maintenance.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[must_use]
    pub fn row(&self, u: usize) -> Row<'_> {
        assert!(u < self.n, "node index out of range");
        Row {
            words: &self.rows[u * self.row_words..(u + 1) * self.row_words],
            n: self.n,
            u,
            v: 0,
        }
    }

    /// Iterator over all active edges as `(u, v)` pairs with `u < v`.
    #[must_use]
    pub fn active_edges(&self) -> ActiveEdges<'_> {
        ActiveEdges { es: self, idx: 0 }
    }

    /// The active subgraph induced by `nodes`, relabelled to `0..nodes.len()`
    /// in the given order.
    ///
    /// Used to check constructions that live on a subset of the population,
    /// e.g. the replica built on `V₂` by Graph-Replication or the useful
    /// space of a universal constructor.
    #[must_use]
    pub fn induced(&self, nodes: &[usize]) -> EdgeSet {
        let mut sub = EdgeSet::new(nodes.len());
        for (i, &u) in nodes.iter().enumerate() {
            for (j, &v) in nodes.iter().enumerate().skip(i + 1) {
                if self.is_active(u, v) {
                    sub.activate(i, j);
                }
            }
        }
        sub
    }

    /// The multiset of node degrees, sorted ascending.
    #[must_use]
    pub fn degree_sequence(&self) -> Vec<u32> {
        let mut d = self.degrees.clone();
        d.sort_unstable();
        d
    }

    /// Bytes of heap memory held by the set: the triangular bitset, the
    /// square adjacency mirror, and the degree vector — `3n²/16 + 4n`
    /// bytes, the Θ(n²) term the sparse engine exists to avoid.
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        ((self.words.capacity() + self.rows.capacity()) * 8 + self.degrees.capacity() * 4) as u64
    }
}

impl fmt::Debug for EdgeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EdgeSet")
            .field("n", &self.n)
            .field("active", &self.active)
            .field("edges", &self.active_edges().collect::<Vec<_>>())
            .finish()
    }
}

/// Iterator over one row of the adjacency relation: `(v, active)` for all
/// `v ≠ u`.
///
/// Produced by [`EdgeSet::row`].
#[derive(Debug)]
pub struct Row<'a> {
    words: &'a [u64],
    n: usize,
    u: usize,
    v: usize,
}

impl Iterator for Row<'_> {
    type Item = (usize, bool);

    fn next(&mut self) -> Option<(usize, bool)> {
        if self.v == self.u {
            self.v += 1;
        }
        let v = self.v;
        if v >= self.n {
            return None;
        }
        self.v += 1;
        Some((v, self.words[v / 64] >> (v % 64) & 1 == 1))
    }
}

/// Iterator over the active neighbours of one node.
///
/// Produced by [`EdgeSet::neighbors`].
#[derive(Debug)]
pub struct Neighbors<'a> {
    words: &'a [u64],
    word: u64,
    word_idx: usize,
    remaining: u32,
}

impl Iterator for Neighbors<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        loop {
            if self.word != 0 {
                let bit = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                self.remaining -= 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            // The degree guard above means a set bit is still ahead.
            self.word = self.words[self.word_idx];
        }
    }
}

/// Iterator over all active edges.
///
/// Produced by [`EdgeSet::active_edges`].
#[derive(Debug)]
pub struct ActiveEdges<'a> {
    es: &'a EdgeSet,
    idx: usize,
}

impl Iterator for ActiveEdges<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        let total = self.es.pair_count();
        while self.idx < total {
            let word = self.es.words[self.idx / 64];
            if word == 0 {
                // Skip the rest of an empty word.
                self.idx = (self.idx / 64 + 1) * 64;
                continue;
            }
            let i = self.idx;
            self.idx += 1;
            if word >> (i % 64) & 1 == 1 {
                return Some(self.es.pair_at(i));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_is_bijective() {
        let es = EdgeSet::new(9);
        let mut seen = vec![false; es.pair_count()];
        for u in 0..9 {
            for v in (u + 1)..9 {
                let i = es.pair_index(u, v);
                assert!(!seen[i], "index {i} repeated for ({u},{v})");
                seen[i] = true;
                assert_eq!(es.pair_at(i), (u, v));
                assert_eq!(es.pair_index(v, u), i, "index must be symmetric");
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn set_and_degree_bookkeeping() {
        let mut es = EdgeSet::new(6);
        assert!(!es.set(2, 5, true));
        assert!(es.set(5, 2, true), "second set returns previous state");
        assert_eq!(es.degree(2), 1);
        assert_eq!(es.degree(5), 1);
        assert_eq!(es.active_count(), 1);
        es.set(2, 5, false);
        assert_eq!(es.degree(2), 0);
        assert_eq!(es.active_count(), 0);
    }

    #[test]
    fn neighbors_and_edge_iteration() {
        let es = EdgeSet::from_edges(5, [(0, 3), (3, 4), (1, 3)]);
        assert_eq!(es.neighbors(3).collect::<Vec<_>>(), vec![0, 1, 4]);
        assert_eq!(es.neighbors(2).count(), 0);
        let mut edges = es.active_edges().collect::<Vec<_>>();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 3), (1, 3), (3, 4)]);
    }

    #[test]
    fn row_matches_is_active_everywhere() {
        // Pseudo-random edge pattern, then every row must agree with the
        // reference per-pair lookup (this pins the incremental triangular
        // index arithmetic).
        for n in [1usize, 2, 3, 7, 12, 30] {
            let mut es = EdgeSet::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if (u * 31 + v * 17) % 3 == 0 {
                        es.activate(u, v);
                    }
                }
            }
            for u in 0..n {
                let row: Vec<(usize, bool)> = es.row(u).collect();
                let expect: Vec<(usize, bool)> = (0..n)
                    .filter(|&v| v != u)
                    .map(|v| (v, es.is_active(u, v)))
                    .collect();
                assert_eq!(row, expect, "row({u}) of n={n}");
            }
        }
    }

    #[test]
    fn induced_subgraph_relabels() {
        let es = EdgeSet::from_edges(6, [(0, 2), (2, 4), (4, 0), (1, 5)]);
        let sub = es.induced(&[0, 2, 4]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.active_count(), 3);
        assert!(sub.is_active(0, 1) && sub.is_active(1, 2) && sub.is_active(0, 2));
    }

    #[test]
    fn clear_resets_everything() {
        let mut es = EdgeSet::from_edges(4, [(0, 1), (2, 3)]);
        es.clear();
        assert_eq!(es.active_count(), 0);
        assert!((0..4).all(|u| es.degree(u) == 0));
        assert_eq!(es.active_edges().count(), 0);
    }

    #[test]
    fn tiny_populations() {
        let es = EdgeSet::new(1);
        assert_eq!(es.pair_count(), 0);
        assert_eq!(es.active_count(), 0);
        let es = EdgeSet::new(0);
        assert_eq!(es.pair_count(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let _ = EdgeSet::new(3).pair_index(1, 1);
    }

    #[test]
    fn degree_sequence_sorted() {
        let es = EdgeSet::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(es.degree_sequence(), vec![1, 1, 1, 3]);
    }
}
