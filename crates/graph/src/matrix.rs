//! Adjacency-matrix encoding of graphs for Turing-machine input.
//!
//! Section 6 of the paper feeds the random graph `G₂` to a space-bounded TM
//! "in adjacency matrix encoding", so the input length is `l = Θ(n²)`. This
//! module provides that codec: a symmetric bit matrix with a row-major
//! bitstring serialization matching what the simulated TM reads.

use crate::EdgeSet;

/// A symmetric adjacency matrix with zero diagonal.
///
/// # Example
///
/// ```
/// use netcon_graph::{matrix::AdjMatrix, EdgeSet};
///
/// let es = EdgeSet::from_edges(3, [(0, 2)]);
/// let m = AdjMatrix::from(&es);
/// assert!(m.get(2, 0));
/// assert_eq!(m.to_bits().len(), 9);
/// assert_eq!(EdgeSet::from(&m), es);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjMatrix {
    n: usize,
    bits: Vec<bool>,
}

impl AdjMatrix {
    /// Creates an empty (all-zero) `n × n` matrix.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            bits: vec![false; n * n],
        }
    }

    /// The number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The entry at `(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn get(&self, u: usize, v: usize) -> bool {
        assert!(u < self.n && v < self.n, "index out of range");
        self.bits[u * self.n + v]
    }

    /// Sets the symmetric entries `(u, v)` and `(v, u)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `u == v` with `value = true`
    /// (the diagonal must stay zero).
    pub fn set(&mut self, u: usize, v: usize, value: bool) {
        assert!(u < self.n && v < self.n, "index out of range");
        assert!(!(u == v && value), "the diagonal must stay zero");
        self.bits[u * self.n + v] = value;
        self.bits[v * self.n + u] = value;
    }

    /// Row-major bitstring of length `n²` — the TM input encoding.
    #[must_use]
    pub fn to_bits(&self) -> Vec<bool> {
        self.bits.clone()
    }

    /// Parses a row-major bitstring of length `n²`.
    ///
    /// Returns `None` if the length is not a perfect square or the matrix
    /// is not symmetric with a zero diagonal.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Option<Self> {
        let n = (bits.len() as f64).sqrt().round() as usize;
        if n * n != bits.len() {
            return None;
        }
        let m = Self {
            n,
            bits: bits.to_vec(),
        };
        for u in 0..n {
            if m.get(u, u) {
                return None;
            }
            for v in (u + 1)..n {
                if m.get(u, v) != m.get(v, u) {
                    return None;
                }
            }
        }
        Some(m)
    }
}

impl From<&EdgeSet> for AdjMatrix {
    fn from(es: &EdgeSet) -> Self {
        let mut m = AdjMatrix::new(es.n());
        for (u, v) in es.active_edges() {
            m.set(u, v, true);
        }
        m
    }
}

impl From<&AdjMatrix> for EdgeSet {
    fn from(m: &AdjMatrix) -> Self {
        let mut es = EdgeSet::new(m.n());
        for u in 0..m.n() {
            for v in (u + 1)..m.n() {
                if m.get(u, v) {
                    es.activate(u, v);
                }
            }
        }
        es
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_bits() {
        let es = EdgeSet::from_edges(4, [(0, 1), (1, 3), (2, 3)]);
        let m = AdjMatrix::from(&es);
        let bits = m.to_bits();
        let m2 = AdjMatrix::from_bits(&bits).expect("valid encoding");
        assert_eq!(m, m2);
        assert_eq!(EdgeSet::from(&m2), es);
    }

    #[test]
    fn rejects_bad_encodings() {
        // Not a perfect square.
        assert!(AdjMatrix::from_bits(&[false; 5]).is_none());
        // Nonzero diagonal.
        let mut bits = vec![false; 4];
        bits[0] = true;
        assert!(AdjMatrix::from_bits(&bits).is_none());
        // Asymmetric.
        let mut bits = vec![false; 4];
        bits[1] = true; // (0,1) set, (1,0) clear
        assert!(AdjMatrix::from_bits(&bits).is_none());
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_set_panics() {
        AdjMatrix::new(3).set(1, 1, true);
    }
}
