//! Predicates for the target shapes of Section 3.2 of the paper.
//!
//! Each predicate inspects only the active subgraph (the *output* of a
//! network constructor whose output states cover all of `Q`). Protocol
//! crates combine these with node-state conditions to certify stability.

use crate::components::{connected_components, is_connected};
use crate::EdgeSet;

/// Whether the active graph is a *spanning line*: connected, with exactly 2
/// nodes of degree 1 and `n − 2` nodes of degree 2 (§3.2, "Global line").
///
/// Degenerate cases follow the same degree description: a single node with
/// no edges and a pair joined by one edge both count.
#[must_use]
pub fn is_spanning_line(es: &EdgeSet) -> bool {
    let n = es.n();
    match n {
        0 => true,
        1 => es.active_count() == 0,
        _ => {
            es.active_count() == n - 1
                && (0..n).all(|u| es.degree(u) <= 2)
                && (0..n).filter(|&u| es.degree(u) == 1).count() == 2
                && is_connected(es)
        }
    }
}

/// Whether the active graph is a *spanning ring*: connected and 2-regular
/// (§3.2, "Global ring"). Requires `n ≥ 3`.
#[must_use]
pub fn is_spanning_ring(es: &EdgeSet) -> bool {
    let n = es.n();
    n >= 3 && (0..n).all(|u| es.degree(u) == 2) && is_connected(es)
}

/// Whether the active graph is a *spanning star*: one centre of degree
/// `n − 1` and `n − 1` peripheral nodes of degree 1 (§3.2, "Global star").
///
/// For `n = 2` the single edge counts (either node may be read as the
/// centre); `n < 2` is `false` since no centre/peripheral split exists.
#[must_use]
pub fn is_spanning_star(es: &EdgeSet) -> bool {
    let n = es.n();
    if n < 2 || es.active_count() != n - 1 {
        return false;
    }
    let centers = (0..n).filter(|&u| es.degree(u) as usize == n - 1).count();
    let leaves = (0..n).filter(|&u| es.degree(u) == 1).count();
    if n == 2 {
        centers == 2 && leaves == 2
    } else {
        centers == 1 && leaves == n - 1
    }
}

/// Whether the active graph is a *cycle cover with waste at most `waste`*:
/// every component is a simple cycle, except non-cycle components totalling
/// at most `waste` nodes, each of which is an isolated node or a single
/// active edge (§3.2 "Cycle cover" + Theorem 5, which proves waste 2).
#[must_use]
pub fn is_cycle_cover_with_waste(es: &EdgeSet, waste: usize) -> bool {
    let mut waste_nodes = 0usize;
    for comp in connected_components(es) {
        if is_cycle_component(es, &comp) {
            continue;
        }
        let ok_residue = match comp.len() {
            1 => true,
            2 => es.is_active(comp[0], comp[1]),
            _ => false,
        };
        if !ok_residue {
            return false;
        }
        waste_nodes += comp.len();
    }
    waste_nodes <= waste
}

/// Whether `comp` (a connected component of `es`) is a simple cycle.
fn is_cycle_component(es: &EdgeSet, comp: &[usize]) -> bool {
    comp.len() >= 3 && comp.iter().all(|&u| es.degree(u) == 2)
}

/// Whether the active graph is a *perfect cycle cover*: every node has
/// degree exactly 2 (§3.2, "Cycle cover" with no waste).
#[must_use]
pub fn is_cycle_cover(es: &EdgeSet) -> bool {
    (0..es.n()).all(|u| es.degree(u) == 2)
}

/// Whether the active graph is connected and `k`-regular (§3.2,
/// "k-regular connected", exact form).
#[must_use]
pub fn is_k_regular_connected(es: &EdgeSet, k: u32) -> bool {
    (0..es.n()).all(|u| es.degree(u) == k) && is_connected(es)
}

/// The relaxed k-regular guarantee proved in Theorem 11: the active graph
/// is connected and spanning, at least `n − k + 1` nodes have degree `k`,
/// and each of the remaining `l ≤ k − 1` nodes has degree at least `l − 1`
/// and at most `k − 1`.
#[must_use]
pub fn is_krc_relaxed(es: &EdgeSet, k: u32) -> bool {
    let n = es.n();
    if n < k as usize + 1 || !is_connected(es) {
        return false;
    }
    let low: Vec<u32> = (0..n).map(|u| es.degree(u)).filter(|&d| d != k).collect();
    if low.iter().any(|&d| d > k) {
        return false;
    }
    let l = low.len();
    l <= (k as usize).saturating_sub(1)
        && low
            .iter()
            .all(|&d| d + 1 >= l as u32 && d < k)
}

/// Whether the active graph partitions the population into `⌊n/c⌋` cliques
/// of order `c`, with the remaining `n mod c` nodes in arbitrary residue
/// components that do not touch the cliques (§3.2, "c-cliques" /
/// Theorem 12).
#[must_use]
pub fn is_clique_partition(es: &EdgeSet, c: usize) -> bool {
    assert!(c >= 1, "clique order must be positive");
    let n = es.n();
    let mut cliques = 0usize;
    let mut residue = 0usize;
    for comp in connected_components(es) {
        if comp.len() == c && is_clique_component(es, &comp) {
            cliques += 1;
        } else {
            residue += comp.len();
        }
    }
    cliques == n / c && residue == n % c
}

/// Whether `comp` (a connected component of `es`) is a clique.
fn is_clique_component(es: &EdgeSet, comp: &[usize]) -> bool {
    comp.iter().enumerate().all(|(i, &u)| {
        comp[i + 1..].iter().all(|&v| es.is_active(u, v))
    })
}

/// Whether the active graph is a *maximum matching*: `⌊n/2⌋` disjoint
/// active edges (§3.3, "Maximum matching").
#[must_use]
pub fn is_maximum_matching(es: &EdgeSet) -> bool {
    let n = es.n();
    es.active_count() == n / 2 && (0..n).all(|u| es.degree(u) <= 1)
}

/// Whether the active graph is *spanning* in the sense of Theorem 1: every
/// node has at least one incident active edge.
#[must_use]
pub fn is_spanning_net(es: &EdgeSet) -> bool {
    let n = es.n();
    n >= 2 && (0..n).all(|u| es.degree(u) >= 1)
}

/// Histogram of node degrees: entry `d` counts nodes of degree `d`.
#[must_use]
pub fn degree_histogram(es: &EdgeSet) -> Vec<usize> {
    let mut hist = vec![0usize; 1];
    for u in 0..es.n() {
        let d = es.degree(u) as usize;
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> EdgeSet {
        EdgeSet::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    fn ring(n: usize) -> EdgeSet {
        EdgeSet::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn line_predicate() {
        assert!(is_spanning_line(&path(2)));
        assert!(is_spanning_line(&path(7)));
        assert!(!is_spanning_line(&ring(7)));
        // Disconnected: two paths with the right degree counts overall.
        let es = EdgeSet::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        assert!(!is_spanning_line(&es));
        // A path plus an isolated node is not spanning.
        let es = EdgeSet::from_edges(4, [(0, 1), (1, 2)]);
        assert!(!is_spanning_line(&es));
    }

    #[test]
    fn ring_predicate() {
        assert!(is_spanning_ring(&ring(3)));
        assert!(is_spanning_ring(&ring(8)));
        assert!(!is_spanning_ring(&path(8)));
        // Two disjoint triangles: 2-regular but not connected.
        let es = EdgeSet::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert!(!is_spanning_ring(&es));
        assert!(is_cycle_cover(&es));
    }

    #[test]
    fn star_predicate() {
        let star = EdgeSet::from_edges(5, (1..5).map(|v| (0, v)));
        assert!(is_spanning_star(&star));
        assert!(is_spanning_star(&path(2)));
        assert!(is_spanning_star(&path(3)), "P3 = K_{{1,2}} is both a line and a star");
        assert!(!is_spanning_star(&path(4)));
        let mut broken = star.clone();
        broken.activate(1, 2);
        assert!(!is_spanning_star(&broken));
    }

    #[test]
    fn cycle_cover_with_waste() {
        // Perfect cover.
        assert!(is_cycle_cover_with_waste(&ring(5), 0));
        // Cycle + isolated node: waste 1.
        let mut es = ring(4);
        let es2 = {
            let mut e = EdgeSet::new(5);
            for (u, v) in es.active_edges() {
                e.activate(u, v);
            }
            e
        };
        es = es2;
        assert!(!is_cycle_cover_with_waste(&es, 0));
        assert!(is_cycle_cover_with_waste(&es, 1));
        // Cycle + matched pair: waste 2.
        let es = EdgeSet::from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4)]);
        assert!(is_cycle_cover_with_waste(&es, 2));
        assert!(!is_cycle_cover_with_waste(&es, 1));
        // A path of 3 is not a valid residue.
        let es = EdgeSet::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]);
        assert!(!is_cycle_cover_with_waste(&es, 3));
    }

    #[test]
    fn k_regular_predicates() {
        assert!(is_k_regular_connected(&ring(6), 2));
        assert!(!is_k_regular_connected(&ring(6), 3));
        // K4 is 3-regular connected.
        let k4 = EdgeSet::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(is_k_regular_connected(&k4, 3));
        assert!(is_krc_relaxed(&k4, 3));
        // K4 minus an edge: two nodes of degree 2 = l = 2 ≤ k−1 = 2,
        // each with degree ≥ l−1 = 1 and ≤ 2. Relaxed holds.
        let mut k4m = k4.clone();
        k4m.deactivate(2, 3);
        assert!(!is_k_regular_connected(&k4m, 3));
        assert!(is_krc_relaxed(&k4m, 3));
    }

    #[test]
    fn clique_partition_predicate() {
        // Two triangles on 6 nodes = 3-clique partition.
        let es = EdgeSet::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert!(is_clique_partition(&es, 3));
        assert!(!is_clique_partition(&es, 2));
        // 7 nodes: two triangles + 1 leftover node.
        let es = EdgeSet::from_edges(7, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert!(is_clique_partition(&es, 3));
        // Residue touching a clique is not allowed: component of size 4.
        let es = EdgeSet::from_edges(7, [(0, 1), (1, 2), (2, 0), (0, 6), (3, 4), (4, 5), (5, 3)]);
        assert!(!is_clique_partition(&es, 3));
    }

    #[test]
    fn matching_and_spanning() {
        let es = EdgeSet::from_edges(6, [(0, 1), (2, 3), (4, 5)]);
        assert!(is_maximum_matching(&es));
        assert!(is_spanning_net(&es));
        let es = EdgeSet::from_edges(7, [(0, 1), (2, 3), (4, 5)]);
        assert!(is_maximum_matching(&es), "odd n leaves one node unmatched");
        assert!(!is_spanning_net(&es));
        let es = EdgeSet::from_edges(4, [(0, 1), (1, 2)]);
        assert!(!is_maximum_matching(&es));
    }

    #[test]
    fn histogram() {
        let star = EdgeSet::from_edges(5, (1..5).map(|v| (0, v)));
        assert_eq!(degree_histogram(&star), vec![0, 4, 0, 0, 1]);
    }
}
