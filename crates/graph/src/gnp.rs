//! The Erdős–Rényi `G(n, p)` random-graph model.
//!
//! The universal constructors of Section 6 repeatedly draw a uniform random
//! graph `G₂ ∈ G(n−k, 1/2)` on the useful space and test it against a
//! decidable graph language. This module provides the reference generator
//! those constructions are validated against.

use rand::{Rng, RngExt};

use crate::EdgeSet;

/// Samples a graph from `G(n, p)`: each of the `n(n−1)/2` edges is included
/// independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
///
/// # Example
///
/// ```
/// use netcon_graph::gnp::gnp;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let g = gnp(16, 0.5, &mut rng);
/// assert!(g.active_count() <= 16 * 15 / 2);
/// ```
#[must_use]
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> EdgeSet {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut es = EdgeSet::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                es.activate(u, v);
            }
        }
    }
    es
}

/// Samples a graph from `G(n, 1/2)` with one fair coin per edge — the exact
/// experiment performed by the universal constructor's drawing phase
/// (Theorem 14: "activates or deactivates each edge equiprobably").
#[must_use]
pub fn gnp_half<R: Rng + ?Sized>(n: usize, rng: &mut R) -> EdgeSet {
    let mut es = EdgeSet::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(0.5) {
                es.activate(u, v);
            }
        }
    }
    es
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn extreme_probabilities() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).active_count(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).active_count(), 45);
    }

    #[test]
    fn half_density_concentrates() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 64;
        let m = n * (n - 1) / 2;
        let g = gnp_half(n, &mut rng);
        let count = g.active_count() as f64;
        // Mean m/2, sd = sqrt(m)/2 ≈ 22; allow 6 sigma.
        assert!((count - m as f64 / 2.0).abs() < 6.0 * (m as f64).sqrt() / 2.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = gnp_half(20, &mut SmallRng::seed_from_u64(9));
        let b = gnp_half(20, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
