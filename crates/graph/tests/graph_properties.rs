//! Property-based tests for the graph substrate.

use netcon_graph::components::{connected_components, is_connected, UnionFind};
use netcon_graph::gnp::gnp;
use netcon_graph::iso::{are_isomorphic, isomorphism};
use netcon_graph::matrix::AdjMatrix;
use netcon_graph::properties::degree_histogram;
use netcon_graph::EdgeSet;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn arb_graph(max_n: usize) -> impl Strategy<Value = EdgeSet> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            let m = n * (n - 1) / 2;
            (Just(n), proptest::collection::vec(any::<bool>(), m))
        })
        .prop_map(|(n, bits)| {
            let mut es = EdgeSet::new(n);
            let mut k = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if bits[k] {
                        es.activate(u, v);
                    }
                    k += 1;
                }
            }
            es
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The handshake lemma: degrees sum to twice the edge count, and the
    /// histogram counts every node exactly once.
    #[test]
    fn handshake_and_histogram(es in arb_graph(10)) {
        let degree_sum: u32 = (0..es.n()).map(|u| es.degree(u)).sum();
        prop_assert_eq!(degree_sum as usize, 2 * es.active_count());
        let hist = degree_histogram(&es);
        prop_assert_eq!(hist.iter().sum::<usize>(), es.n());
    }

    /// Components partition the node set, and each component is internally
    /// connected while cross-component edges do not exist.
    #[test]
    fn components_partition_nodes(es in arb_graph(10)) {
        let comps = connected_components(&es);
        let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..es.n()).collect::<Vec<_>>());
        for (i, c1) in comps.iter().enumerate() {
            for c2 in comps.iter().skip(i + 1) {
                for &u in c1 {
                    for &v in c2 {
                        prop_assert!(!es.is_active(u, v), "edge across components");
                    }
                }
            }
        }
        prop_assert_eq!(comps.len() == 1, is_connected(&es));
    }

    /// Union-find agrees with BFS components after inserting all edges.
    #[test]
    fn union_find_agrees_with_bfs(es in arb_graph(10)) {
        let mut uf = UnionFind::new(es.n());
        for (u, v) in es.active_edges() {
            uf.union(u, v);
        }
        prop_assert_eq!(uf.component_count(), connected_components(&es).len());
        for comp in connected_components(&es) {
            for w in &comp[1..] {
                prop_assert!(uf.same(comp[0], *w));
            }
        }
    }

    /// Any permutation of a graph is isomorphic to it, and the returned
    /// mapping is a certificate.
    #[test]
    fn isomorphism_under_permutation(es in arb_graph(8), seed in any::<u64>()) {
        let n = es.n();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut SmallRng::seed_from_u64(seed));
        let mut h = EdgeSet::new(n);
        for (u, v) in es.active_edges() {
            h.activate(perm[u], perm[v]);
        }
        let f = isomorphism(&es, &h);
        prop_assert!(f.is_some());
        let f = f.unwrap();
        for u in 0..n {
            for v in (u + 1)..n {
                prop_assert_eq!(es.is_active(u, v), h.is_active(f[u], f[v]));
            }
        }
    }

    /// Adding one edge to a graph makes it non-isomorphic to the original.
    #[test]
    fn edge_count_distinguishes(es in arb_graph(8)) {
        let n = es.n();
        let missing = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .find(|&(u, v)| !es.is_active(u, v));
        prop_assume!(missing.is_some());
        let (u, v) = missing.unwrap();
        let mut h = es.clone();
        h.activate(u, v);
        prop_assert!(!are_isomorphic(&es, &h));
    }

    /// The adjacency-matrix codec is lossless.
    #[test]
    fn matrix_roundtrip(es in arb_graph(9)) {
        let m = AdjMatrix::from(&es);
        prop_assert_eq!(EdgeSet::from(&m), es.clone());
        let m2 = AdjMatrix::from_bits(&m.to_bits()).expect("valid encoding");
        prop_assert_eq!(m, m2);
    }

    /// G(n, p) respects its density parameter monotonically in expectation
    /// (coarse check: p = 0 and p = 1 extremes plus count bounds).
    #[test]
    fn gnp_extremes(n in 2usize..20, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        prop_assert_eq!(gnp(n, 0.0, &mut rng).active_count(), 0);
        prop_assert_eq!(gnp(n, 1.0, &mut rng).active_count(), n * (n - 1) / 2);
    }
}

// --- EdgeSet activation/deactivation round-trips ---------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Activating an inactive edge and deactivating it again is a perfect
    /// round-trip: equality, degrees, and the active count all restore.
    #[test]
    fn activate_deactivate_roundtrip(es in arb_graph(10), pick in any::<u64>()) {
        let n = es.n();
        let (u, v) = es.pair_at((pick % es.pair_count() as u64) as usize);
        let before = es.clone();
        let degrees: Vec<u32> = (0..n).map(|w| es.degree(w)).collect();

        let mut work = es.clone();
        if work.is_active(u, v) {
            work.deactivate(u, v);
            prop_assert_eq!(work.degree(u), degrees[u] - 1);
            prop_assert_eq!(work.degree(v), degrees[v] - 1);
            prop_assert_eq!(work.active_count(), before.active_count() - 1);
            work.activate(u, v);
        } else {
            work.activate(u, v);
            prop_assert_eq!(work.degree(u), degrees[u] + 1);
            prop_assert_eq!(work.degree(v), degrees[v] + 1);
            prop_assert_eq!(work.active_count(), before.active_count() + 1);
            work.deactivate(u, v);
        }
        prop_assert_eq!(&work, &before);
        for w in 0..n {
            prop_assert_eq!(work.degree(w), degrees[w], "degree of {} drifted", w);
        }
    }

    /// Toggling every edge twice via `set` restores the graph, and the
    /// maintained degrees always match a from-scratch recount.
    #[test]
    fn double_toggle_is_identity_and_degrees_recount(es in arb_graph(9)) {
        let n = es.n();
        let before = es.clone();
        let mut work = es;
        for _ in 0..2 {
            for u in 0..n {
                for v in (u + 1)..n {
                    let now = work.is_active(u, v);
                    work.set(u, v, !now);
                }
            }
        }
        prop_assert_eq!(&work, &before);
        let recount: Vec<u32> = (0..n)
            .map(|u| (0..n).filter(|&v| v != u && work.is_active(u, v)).count() as u32)
            .collect();
        let maintained: Vec<u32> = (0..n).map(|u| work.degree(u)).collect();
        prop_assert_eq!(maintained, recount);
        prop_assert_eq!(work.degree_sequence().iter().sum::<u32>() as usize, 2 * work.active_count());
    }

    /// `clear` zeroes everything `from_edges` built, and rebuilding from
    /// the active-edge list is lossless.
    #[test]
    fn clear_and_rebuild_roundtrip(es in arb_graph(10)) {
        let rebuilt = EdgeSet::from_edges(es.n(), es.active_edges());
        prop_assert_eq!(&rebuilt, &es);
        let mut wiped = es.clone();
        wiped.clear();
        prop_assert_eq!(wiped.active_count(), 0);
        for u in 0..es.n() {
            prop_assert_eq!(wiped.degree(u), 0);
        }
    }
}
