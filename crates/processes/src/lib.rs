//! The fundamental probabilistic processes of §3.3 (Table 1 of the paper).
//!
//! These seven small protocols are the recurring building blocks of every
//! running-time analysis in the paper; each is an application of the
//! coupon-collector argument under the uniform random scheduler:
//!
//! | Process | Rules | Expected time |
//! |---------|-------|---------------|
//! | One-way epidemic | `(a,b) → (a,a)` | Θ(n log n) |
//! | One-to-one elimination | `(a,a) → (a,b)` | Θ(n²) |
//! | Maximum matching | `(a,a,0) → (b,b,1)` | Θ(n²) |
//! | One-to-all elimination | `(a,a) → (b,a)`, `(a,b) → (b,b)` | Θ(n log n) |
//! | Meet everybody | `(a,b) → (a,c)` | Θ(n² log n) |
//! | Node cover | `(a,a) → (b,b)`, `(a,b) → (b,b)` | Θ(n log n) |
//! | Edge cover | `(a,a,0) → (a,a,1)` | Θ(n² log n) |
//!
//! [`Process::measure`] runs one seeded trial and returns the exact
//! convergence step (the last effective interaction), which is what the
//! Table 1 bench sweeps and fits.
//!
//! # Example
//!
//! ```
//! use netcon_processes::Process;
//!
//! let steps = Process::OneWayEpidemic.measure(32, 7);
//! assert!(steps > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use netcon_core::{Link, Population, ProtocolBuilder, RuleProtocol, Simulation, StateId};
use netcon_graph::properties::is_maximum_matching;

const A: StateId = StateId::new(0);
const B: StateId = StateId::new(1);

/// One of the seven fundamental probabilistic processes of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Process {
    /// `(a, b) → (a, a)`; one initial `a`; ends when all nodes are `a`.
    OneWayEpidemic,
    /// `(a, a) → (a, b)`; all `a`; ends when a single `a` remains.
    OneToOneElimination,
    /// `(a, a, 0) → (b, b, 1)`; ends at a matching of cardinality ⌊n/2⌋.
    MaximumMatching,
    /// `(a, a) → (b, a)`, `(a, b) → (b, b)`; ends when no `a` remains.
    OneToAllElimination,
    /// `(a, b) → (a, c)`; one `a`; ends when `a` has met every node.
    MeetEverybody,
    /// `(a, a) → (b, b)`, `(a, b) → (b, b)`; ends when every node has
    /// interacted at least once.
    NodeCover,
    /// `(a, a, 0) → (a, a, 1)`; ends when every edge has been activated,
    /// i.e. all `n(n−1)/2` interactions have occurred.
    EdgeCover,
}

impl Process {
    /// All seven processes, in Table 1 order.
    #[must_use]
    pub fn all() -> [Process; 7] {
        [
            Process::OneWayEpidemic,
            Process::OneToOneElimination,
            Process::MaximumMatching,
            Process::OneToAllElimination,
            Process::MeetEverybody,
            Process::NodeCover,
            Process::EdgeCover,
        ]
    }

    /// The paper's name for the process.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Process::OneWayEpidemic => "One-way epidemic",
            Process::OneToOneElimination => "One-to-one elimination",
            Process::MaximumMatching => "Maximum matching",
            Process::OneToAllElimination => "One-to-all elimination",
            Process::MeetEverybody => "Meet everybody",
            Process::NodeCover => "Node cover",
            Process::EdgeCover => "Edge cover",
        }
    }

    /// The expected time proved in Table 1.
    #[must_use]
    pub fn theory(self) -> &'static str {
        match self {
            Process::OneWayEpidemic
            | Process::OneToAllElimination
            | Process::NodeCover => "Θ(n log n)",
            Process::OneToOneElimination | Process::MaximumMatching => "Θ(n²)",
            Process::MeetEverybody | Process::EdgeCover => "Θ(n² log n)",
        }
    }

    /// The polynomial exponent of the bound (the `k` in `Θ(n^k)` or
    /// `Θ(n^k log n)`).
    #[must_use]
    pub fn theory_exponent(self) -> f64 {
        match self {
            Process::OneWayEpidemic
            | Process::OneToAllElimination
            | Process::NodeCover => 1.0,
            Process::OneToOneElimination | Process::MaximumMatching => 2.0,
            Process::MeetEverybody | Process::EdgeCover => 2.0,
        }
    }

    /// Whether the bound carries a `log n` factor.
    #[must_use]
    pub fn theory_has_log(self) -> bool {
        matches!(
            self,
            Process::OneWayEpidemic
                | Process::OneToAllElimination
                | Process::NodeCover
                | Process::MeetEverybody
                | Process::EdgeCover
        )
    }

    /// Builds the process as a protocol.
    #[must_use]
    pub fn protocol(self) -> RuleProtocol {
        let mut b = ProtocolBuilder::new(self.name());
        let a = b.state("a");
        match self {
            Process::OneWayEpidemic => {
                let s = b.state("b");
                b.rule((a, s, Link::Off), (a, a, Link::Off));
            }
            Process::OneToOneElimination => {
                let s = b.state("b");
                b.rule((a, a, Link::Off), (a, s, Link::Off));
            }
            Process::MaximumMatching => {
                let s = b.state("b");
                b.rule((a, a, Link::Off), (s, s, Link::On));
            }
            Process::OneToAllElimination => {
                let s = b.state("b");
                b.rule((a, a, Link::Off), (s, a, Link::Off));
                b.rule((a, s, Link::Off), (s, s, Link::Off));
            }
            Process::MeetEverybody => {
                let s = b.state("b");
                let c = b.state("c");
                b.rule((a, s, Link::Off), (a, c, Link::Off));
            }
            Process::NodeCover => {
                let s = b.state("b");
                b.rule((a, a, Link::Off), (s, s, Link::Off));
                b.rule((a, s, Link::Off), (s, s, Link::Off));
            }
            Process::EdgeCover => {
                b.rule((a, a, Link::Off), (a, a, Link::On));
            }
        }
        b.build().expect("the §3.3 processes are well-formed")
    }

    /// The initial configuration on `n` nodes: all nodes in `a`, except
    /// the epidemic and meet-everybody processes which start with a single
    /// distinguished `a` (node 0) and everyone else in `b`.
    #[must_use]
    pub fn initial_population(self, n: usize) -> Population<StateId> {
        match self {
            Process::OneWayEpidemic | Process::MeetEverybody => {
                let mut pop = Population::new(n, B);
                pop.set_state(0, A);
                pop
            }
            _ => Population::new(n, A),
        }
    }

    /// Whether the process has converged in `pop`.
    #[must_use]
    pub fn is_done(self, pop: &Population<StateId>) -> bool {
        match self {
            Process::OneWayEpidemic => pop.count_where(|s| *s != A) == 0,
            Process::OneToOneElimination => pop.count_where(|s| *s == A) == 1,
            Process::MaximumMatching => is_maximum_matching(pop.edges()),
            Process::OneToAllElimination | Process::NodeCover => {
                pop.count_where(|s| *s == A) == 0
            }
            Process::MeetEverybody => pop.count_where(|s| *s == B) == 0,
            Process::EdgeCover => pop.edges().active_count() == pop.edges().pair_count(),
        }
    }

    /// Runs one trial on `n` nodes under the uniform random scheduler and
    /// returns the convergence time in steps (the last effective
    /// interaction — the paper's sequential running time).
    ///
    /// # Panics
    ///
    /// Panics if the process somehow fails to converge within a generous
    /// `Θ(n² log² n)`-scaled safety budget (which would indicate an engine
    /// bug — all seven processes converge with probability 1).
    #[must_use]
    pub fn measure(self, n: usize, seed: u64) -> u64 {
        let pop = self.initial_population(n);
        let mut sim = Simulation::from_population(self.protocol(), pop, seed);
        let nf = n as f64;
        let budget = (200.0 * nf * nf * nf.ln().max(1.0).powi(2)) as u64 + 100_000;
        let outcome = sim.run_until(|p| self.is_done(p), budget);
        outcome
            .last_effective()
            .unwrap_or_else(|| panic!("{} did not converge on n={n} within {budget} steps", self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_processes_converge() {
        for p in Process::all() {
            for n in [2, 3, 8, 16] {
                let steps = p.measure(n, 42);
                assert!(steps > 0 || n == 1, "{} produced zero steps at n={n}", p.name());
            }
        }
    }

    #[test]
    fn epidemic_spreads_to_everyone() {
        let p = Process::OneWayEpidemic;
        let pop = p.initial_population(10);
        assert_eq!(pop.count_where(|s| *s == A), 1);
        let mut sim = Simulation::from_population(p.protocol(), pop, 3);
        assert!(sim.run_until(|pp| p.is_done(pp), 100_000).stabilized());
        assert_eq!(sim.population().count_where(|s| *s == A), 10);
    }

    #[test]
    fn one_to_one_keeps_exactly_one() {
        let p = Process::OneToOneElimination;
        let mut sim = Simulation::from_population(p.protocol(), p.initial_population(17), 5);
        assert!(sim.run_until(|pp| p.is_done(pp), 1_000_000).stabilized());
        assert_eq!(sim.population().count_where(|s| *s == A), 1);
        assert!(sim.is_quiescent(), "a single survivor cannot be eliminated");
    }

    #[test]
    fn matching_is_maximum() {
        let p = Process::MaximumMatching;
        for n in [6, 7] {
            let mut sim = Simulation::from_population(p.protocol(), p.initial_population(n), 1);
            assert!(sim.run_until(|pp| p.is_done(pp), 1_000_000).stabilized());
            assert_eq!(sim.population().edges().active_count(), n / 2);
        }
    }

    #[test]
    fn meet_everybody_touches_all() {
        let p = Process::MeetEverybody;
        let mut sim = Simulation::from_population(p.protocol(), p.initial_population(9), 8);
        assert!(sim.run_until(|pp| p.is_done(pp), 10_000_000).stabilized());
        // All non-distinguished nodes have been met (state c).
        assert_eq!(sim.population().count_where(|s| *s == B), 0);
    }

    #[test]
    fn edge_cover_activates_every_edge() {
        let p = Process::EdgeCover;
        let mut sim = Simulation::from_population(p.protocol(), p.initial_population(8), 2);
        assert!(sim.run_until(|pp| p.is_done(pp), 10_000_000).stabilized());
        assert_eq!(sim.population().edges().active_count(), 28);
    }

    #[test]
    fn measured_times_scale_with_theory_ordering() {
        // At a fixed n the Θ(n log n) processes must be far faster than
        // the Θ(n² log n) ones; aggregate over a few seeds for stability.
        let n = 64;
        let avg = |p: Process| -> f64 {
            (0..5).map(|s| p.measure(n, s) as f64).sum::<f64>() / 5.0
        };
        let epidemic = avg(Process::OneWayEpidemic);
        let elim = avg(Process::OneToOneElimination);
        let edge_cover = avg(Process::EdgeCover);
        assert!(
            epidemic < elim && elim < edge_cover,
            "ordering violated: epidemic={epidemic}, elim={elim}, edge_cover={edge_cover}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        for p in Process::all() {
            assert_eq!(p.measure(12, 9), p.measure(12, 9), "{}", p.name());
        }
    }
}
