//! Robustness suite: the constructors under fair deterministic
//! schedulers, invariants sampled along random executions, and
//! cross-protocol consistency checks.

use netcon_core::testing::{assert_stabilizes_sim, step_budget};
use netcon_core::{Machine, Population, RoundRobin, ShuffledRounds, Simulation, StateId};
use netcon_graph::components::connected_components;
use netcon_graph::properties::{
    is_cycle_cover_with_waste, is_spanning_line, is_spanning_ring, is_spanning_star,
};
use netcon_protocols::*;
use proptest::prelude::*;

#[test]
fn constructors_work_under_shuffled_rounds() {
    // The shuffled-rounds scheduler covers every pair once per round in a
    // fresh random order; protocols whose correctness needs only fairness
    // must still converge.
    let sim = Simulation::with_scheduler(global_star::protocol(), 16, 3, ShuffledRounds::new());
    let sim = assert_stabilizes_sim(sim, global_star::is_stable, step_budget(16), 10_000);
    assert!(is_spanning_star(sim.population().edges()));

    let sim = Simulation::with_scheduler(cycle_cover::protocol(), 15, 3, ShuffledRounds::new());
    let sim = assert_stabilizes_sim(sim, cycle_cover::is_stable, step_budget(15), 10_000);
    assert!(is_cycle_cover_with_waste(sim.population().edges(), 2));

    let sim =
        Simulation::with_scheduler(fast_global_line::protocol(), 10, 3, ShuffledRounds::new());
    let sim = assert_stabilizes_sim(sim, fast_global_line::is_stable, step_budget(10), 10_000);
    assert!(is_spanning_line(sim.population().edges()));
}

#[test]
fn constructors_work_under_round_robin() {
    let sim = Simulation::with_scheduler(spanning_net::protocol(), 14, 0, RoundRobin::new());
    let sim = assert_stabilizes_sim(sim, spanning_net::is_stable, step_budget(14), 10_000);
    assert!(netcon_graph::properties::is_spanning_net(
        sim.population().edges()
    ));

    let sim = Simulation::with_scheduler(krc::protocol(2), 8, 1, RoundRobin::new());
    let sim = assert_stabilizes_sim(sim, |p| krc::is_stable(p, 2), step_budget(8), 10_000);
    assert!(is_spanning_ring(sim.population().edges()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Simple-Global-Line's reachable-shape invariant (each component is
    /// a line with exactly one leader; isolated nodes are q0) holds at
    /// arbitrary sample points of arbitrary executions — `census` panics
    /// if it ever breaks.
    #[test]
    fn line_shape_invariant_holds(n in 4usize..24, seed in any::<u64>(), probes in 1usize..20) {
        let mut sim = Simulation::new(simple_global_line::protocol(), n, seed);
        for _ in 0..probes {
            sim.run_for(500);
            let c = simple_global_line::census(sim.population());
            let in_lines: usize = c.line_lengths.iter().sum();
            prop_assert_eq!(in_lines + c.isolated, n);
        }
    }

    /// Cycle-Cover's state-records-degree invariant along executions.
    #[test]
    fn cycle_cover_degree_invariant(n in 4usize..24, seed in any::<u64>()) {
        let mut sim = Simulation::new(cycle_cover::protocol(), n, seed);
        for _ in 0..10 {
            sim.run_for(200);
            let pop = sim.population();
            for u in 0..n {
                prop_assert_eq!(
                    pop.state(u).index() as u32,
                    pop.edges().degree(u),
                    "cycle-cover states are degrees"
                );
            }
        }
    }

    /// kRC: the recorded degree matches the real degree, and every
    /// non-singleton component keeps at least one leader.
    #[test]
    fn krc_invariants(k in 2u32..4, n in 6usize..16, seed in any::<u64>()) {
        let st = krc::States { k };
        let mut sim = Simulation::new(krc::protocol(k), n, seed);
        for _ in 0..10 {
            sim.run_for(300);
            let pop = sim.population();
            for u in 0..n {
                prop_assert_eq!(st.degree_of(*pop.state(u)), pop.edges().degree(u));
            }
            for comp in connected_components(pop.edges()) {
                if comp.len() == 1 {
                    continue;
                }
                let leaders = comp
                    .iter()
                    .filter(|&&u| st.is_leader(*pop.state(u)))
                    .count();
                prop_assert!(leaders >= 1, "component without a leader");
            }
        }
    }

    /// Global-Star: once the centre count reaches 1 it stays 1, sampled
    /// along random executions.
    #[test]
    fn star_centre_monotone(n in 3usize..32, seed in any::<u64>()) {
        let mut sim = Simulation::new(global_star::protocol(), n, seed);
        let mut last = n;
        for _ in 0..20 {
            sim.run_for(100);
            let now = sim
                .population()
                .count_where(|s| *s == global_star::C);
            prop_assert!(now <= last && now >= 1);
            last = now;
        }
    }

    /// The doubling protocol never over-recruits, for random d and n.
    #[test]
    fn doubling_never_exceeds_target(d in 1u16..4, extra in 0usize..6, seed in any::<u64>()) {
        let n = (1usize << d) + 1 + extra;
        let pop = doubling::initial_population(n, d);
        let mut sim = Simulation::from_population(doubling::protocol(d), pop, seed);
        for _ in 0..20 {
            sim.run_for(200);
            prop_assert!(sim.population().edges().degree(0) as usize <= 1 << d);
        }
    }
}

#[test]
fn stability_predicates_reject_initial_configurations() {
    // No constructor may report the all-inactive initial configuration as
    // stable (n is chosen large enough that the empty graph is not the
    // target).
    let n = 8;
    assert!(!simple_global_line::is_stable(&Population::new(
        n,
        simple_global_line::Q0
    )));
    assert!(!fast_global_line::is_stable(&Population::new(
        n,
        fast_global_line::Q0
    )));
    assert!(!faster_global_line::is_stable(&Population::new(
        n,
        faster_global_line::Q0
    )));
    assert!(!global_star::is_stable(&Population::new(n, global_star::C)));
    assert!(!global_ring::is_stable(&Population::new(n, global_ring::Q0)));
    assert!(!cycle_cover::is_stable(&Population::new(n, cycle_cover::Q0)));
    let krc_init: Population<StateId> = Population::new(n, krc::States { k: 2 }.q(0));
    assert!(!krc::is_stable(&krc_init, 2));
}

#[test]
fn all_catalog_protocols_have_effective_initial_rules() {
    // From the uniform initial configuration, some pair must be able to
    // make progress (otherwise the protocol is trivially stuck).
    for e in catalog::table2() {
        if e.name == "Graph-Replication" {
            continue; // needs its two-sided initial configuration
        }
        let q0 = e.protocol.initial_state();
        assert!(
            e.protocol.can_affect(&q0, &q0, netcon_core::Link::Off),
            "{} cannot start from the initial configuration",
            e.name
        );
    }
}
