//! A catalogue of all protocol instances, with the state counts the paper
//! reports in Table 2 — used by the table-regeneration benches and the
//! cross-protocol test suites.

use netcon_core::RuleProtocol;

/// One row of the protocol catalogue.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Display name (as in Table 2).
    pub name: &'static str,
    /// The protocol instance.
    pub protocol: RuleProtocol,
    /// The number of states the paper reports.
    pub paper_states: usize,
    /// The paper's expected-time column (verbatim).
    pub paper_time: &'static str,
    /// The paper's lower-bound column (verbatim).
    pub paper_lower_bound: &'static str,
}

/// All protocols of Table 2 (with fixed parameters `k = 2, 3` and
/// `c = 3, 4` for the parameterized families), plus the Theorem 1
/// spanning-net protocol and Protocol 10.
#[must_use]
pub fn table2() -> Vec<Entry> {
    vec![
        Entry {
            name: "Simple-Global-Line",
            protocol: crate::simple_global_line::protocol(),
            paper_states: 5,
            paper_time: "Ω(n⁴) and O(n⁵)",
            paper_lower_bound: "Ω(n²)",
        },
        Entry {
            name: "Fast-Global-Line",
            protocol: crate::fast_global_line::protocol(),
            paper_states: 9,
            paper_time: "O(n³)",
            paper_lower_bound: "Ω(n²)",
        },
        Entry {
            name: "Cycle-Cover",
            protocol: crate::cycle_cover::protocol(),
            paper_states: 3,
            paper_time: "Θ(n²) (optimal)",
            paper_lower_bound: "Ω(n²)",
        },
        Entry {
            name: "Global-Star",
            protocol: crate::global_star::protocol(),
            paper_states: 2,
            paper_time: "Θ(n² log n) (optimal)",
            paper_lower_bound: "Ω(n² log n)",
        },
        Entry {
            name: "Global-Ring",
            protocol: crate::global_ring::protocol(),
            paper_states: 10,
            paper_time: "—",
            paper_lower_bound: "Ω(n²)",
        },
        Entry {
            name: "2RC",
            protocol: crate::krc::protocol(2),
            paper_states: 6,
            paper_time: "—",
            paper_lower_bound: "Ω(n log n)",
        },
        Entry {
            name: "3RC",
            protocol: crate::krc::protocol(3),
            paper_states: 8,
            paper_time: "—",
            paper_lower_bound: "Ω(n log n)",
        },
        Entry {
            name: "3-Cliques",
            protocol: crate::c_cliques::protocol(3),
            paper_states: 12,
            paper_time: "—",
            paper_lower_bound: "Ω(n log n)",
        },
        Entry {
            name: "4-Cliques",
            protocol: crate::c_cliques::protocol(4),
            paper_states: 17,
            paper_time: "—",
            paper_lower_bound: "Ω(n log n)",
        },
        Entry {
            name: "Graph-Replication",
            protocol: crate::replication::protocol(),
            paper_states: 12,
            paper_time: "Θ(n⁴ log n)",
            paper_lower_bound: "—",
        },
        Entry {
            name: "Spanning-Net (Thm 1)",
            protocol: crate::spanning_net::protocol(),
            paper_states: 2,
            paper_time: "Θ(n log n)",
            paper_lower_bound: "Ω(n log n)",
        },
        Entry {
            name: "Faster-Global-Line (§7)",
            protocol: crate::faster_global_line::protocol(),
            paper_states: 6,
            paper_time: "open",
            paper_lower_bound: "Ω(n²)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalogued_size_matches_the_paper() {
        for e in table2() {
            assert_eq!(
                e.protocol.size(),
                e.paper_states,
                "{} state count disagrees with Table 2",
                e.name
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let entries = table2();
        let mut names: Vec<_> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len());
    }
}
