//! Protocols 6–7: **2RC / kRC** — constructs a connected spanning
//! `k`-regular network (2(k+1) states; Theorems 10–11).
//!
//! Node states record active degree: `q_i` is a follower of degree `i`,
//! `l_i` a leader of degree `i`. Nodes below degree `k` connect when they
//! meet; leaders walk their components by swapping with followers and
//! eliminate each other, and a saturated leader `l_k` that detects another
//! component (an isolated `q0`, or any other leader, reachable only over
//! an *inactive* edge) temporarily over-saturates to `l_{k+1}` and then
//! drops some incident edge — opening closed components so they can merge.
//! Theorem 11: the stable result is connected and spanning with at least
//! `n − k + 1` nodes of degree exactly `k`.
//!
//! ```text
//! Q = {q0, …, qk, l1, …, l_{k+1}}
//! (q0, q0, 0) → (q1, l1, 1)
//! (qi, qj, 0) → (qi+1, qj+1, 1)        1 ≤ i < k, 0 ≤ j < k
//! (li, lj, 0) → (li+1, qj+1, 1)        1 ≤ i ≤ j < k        (merge)
//! (li, qj, 0) → (qi+1, lj+1, 1)        1 ≤ i < k, 0 ≤ j < k
//! (li, qj, 1) → (qi, lj, 1)            1 ≤ i, j ≤ k          (swap)
//! (li, lj, 1) → (qi, lj, 1)            1 ≤ i ≤ j ≤ k         (eliminate)
//! (lk, q0, 0) → (lk+1, q1, 1)
//! (lk, li, 0) → (lk+1, qi+1, 1)        1 ≤ i < k             (open)
//! (lk, lk, 0) → (lk+1, lk+1, 1)
//! (lk+1, q1, 1) → (lk, q0, 0)
//! (lk+1, qi, 1) → (lk, li−1, 0)        2 ≤ i ≤ k
//! (lk+1, l1, 1) → (lk, q0, 0)
//! (lk+1, li, 1) → (lk, li−1, 0)        2 ≤ i ≤ k
//! (lk+1, lk+1, 1) → (lk, lk, 0)
//! ```
//!
//! The paper writes the merge and elimination families "for all `i, j`";
//! since δ is a partial function on unordered pairs we canonicalize each
//! mixed pair to the `i ≤ j` order (which of the two symmetric roles wins
//! is immaterial to correctness).

use netcon_core::{Link, Population, ProtocolBuilder, RuleProtocol, StateId};
use netcon_graph::components::is_connected;

/// State handles for a `kRC` instance.
///
/// Layout: `q_i` has id `i` (`0 ≤ i ≤ k`), `l_i` has id `k + i`
/// (`1 ≤ i ≤ k+1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct States {
    /// The degree bound `k`.
    pub k: u32,
}

impl States {
    /// The follower state `q_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > k`.
    #[must_use]
    pub fn q(self, i: u32) -> StateId {
        assert!(i <= self.k, "q_{i} does not exist for k={}", self.k);
        StateId::new(u16::try_from(i).expect("k fits in u16"))
    }

    /// The leader state `l_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not within `1..=k+1`.
    #[must_use]
    pub fn l(self, i: u32) -> StateId {
        assert!(
            (1..=self.k + 1).contains(&i),
            "l_{i} does not exist for k={}",
            self.k
        );
        StateId::new(u16::try_from(self.k + i).expect("k fits in u16"))
    }

    /// The recorded degree of a node in state `s` (the state index).
    #[must_use]
    pub fn degree_of(self, s: StateId) -> u32 {
        let raw = u32::try_from(s.index()).expect("ids fit in u32");
        if raw <= self.k {
            raw
        } else {
            raw - self.k
        }
    }

    /// Whether `s` is one of the leader states.
    #[must_use]
    pub fn is_leader(self, s: StateId) -> bool {
        s.index() > self.k as usize
    }
}

/// Builds Protocol 7 (`kRC`) for a fixed `k ≥ 2`; `protocol(2)` is
/// Protocol 6 (`2RC`).
///
/// # Panics
///
/// Panics if `k < 2`.
#[must_use]
pub fn protocol(k: u32) -> RuleProtocol {
    assert!(k >= 2, "kRC requires k >= 2 (the ring case is k = 2)");
    let mut b = ProtocolBuilder::new(format!("{k}RC"));
    // Declare states in the documented layout order.
    let q: Vec<StateId> = (0..=k).map(|i| b.state(format!("q{i}"))).collect();
    let l: Vec<StateId> = (1..=k + 1).map(|i| b.state(format!("l{i}"))).collect();
    let q = |i: u32| q[i as usize];
    let l = |i: u32| l[(i - 1) as usize];
    let (off, on) = (Link::Off, Link::On);

    b.rule((q(0), q(0), off), (q(1), l(1), on));
    for i in 1..k {
        for j in 0..k {
            b.rule((q(i), q(j), off), (q(i + 1), q(j + 1), on));
        }
    }
    for i in 1..k {
        for j in i..k {
            b.rule((l(i), l(j), off), (l(i + 1), q(j + 1), on));
        }
    }
    for i in 1..k {
        for j in 0..k {
            b.rule((l(i), q(j), off), (q(i + 1), l(j + 1), on));
        }
    }
    // Swapping: leaders keep moving inside components.
    for i in 1..=k {
        for j in 1..=k {
            b.rule((l(i), q(j), on), (q(i), l(j), on));
        }
    }
    // Leader elimination: one leader per component survives.
    for i in 1..=k {
        for j in i..=k {
            b.rule((l(i), l(j), on), (q(i), l(j), on));
        }
    }
    // Opening k-regular components in the presence of other components.
    b.rule((l(k), q(0), off), (l(k + 1), q(1), on));
    for i in 1..k {
        b.rule((l(k), l(i), off), (l(k + 1), q(i + 1), on));
    }
    b.rule((l(k), l(k), off), (l(k + 1), l(k + 1), on));
    b.rule((l(k + 1), q(1), on), (l(k), q(0), off));
    for i in 2..=k {
        b.rule((l(k + 1), q(i), on), (l(k), l(i - 1), off));
    }
    b.rule((l(k + 1), l(1), on), (l(k), q(0), off));
    for i in 2..=k {
        b.rule((l(k + 1), l(i), on), (l(k), l(i - 1), off));
    }
    b.rule((l(k + 1), l(k + 1), on), (l(k), l(k), off));
    b.build().expect("Protocol kRC is well-formed")
}

/// Builds Protocol 6 (`2RC`, the spanning-ring variant of the family).
#[must_use]
pub fn two_rc() -> RuleProtocol {
    protocol(2)
}

/// Certifies output stability for `kRC`:
///
/// * no `q0` (nothing to expand towards),
/// * exactly one leader, not in the transient over-saturated state
///   `l_{k+1}`,
/// * all *deficient* nodes (recorded degree `< k`) pairwise adjacent, so
///   no connect rule applies anywhere the walking leadership could reach,
/// * connected and spanning.
#[must_use]
pub fn is_stable(pop: &Population<StateId>, k: u32) -> bool {
    let st = States { k };
    let mut leaders = 0usize;
    let mut deficient: Vec<usize> = Vec::new();
    for (u, s) in pop.states().iter().enumerate() {
        let d = st.degree_of(*s);
        if st.is_leader(*s) {
            leaders += 1;
            if d == k + 1 {
                return false; // over-saturated leader mid-rewire
            }
        }
        if d == 0 {
            return false; // q0 present
        }
        if d < k {
            deficient.push(u);
        }
    }
    if leaders != 1 {
        return false;
    }
    for (a, &u) in deficient.iter().enumerate() {
        for &v in &deficient[a + 1..] {
            if !pop.edges().is_active(u, v) {
                return false;
            }
        }
    }
    is_connected(pop.edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes;
    use netcon_core::{Machine, Simulation};
    use netcon_graph::properties::{is_krc_relaxed, is_spanning_ring};

    #[test]
    fn paper_metadata() {
        for k in 2..=5 {
            let p = protocol(k);
            assert_eq!(
                p.size() as u32,
                2 * (k + 1),
                "Table 2: kRC uses 2(k+1) states"
            );
        }
    }

    #[test]
    fn two_rc_matches_protocol_6_listing() {
        let p = two_rc();
        let st = States { k: 2 };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        use rand::SeedableRng;
        // Spot-check the listing of Protocol 6 (canonical orders).
        let cases = [
            ((st.q(0), st.q(0), Link::Off), (st.q(1), st.l(1), Link::On)),
            ((st.q(1), st.q(0), Link::Off), (st.q(2), st.q(1), Link::On)),
            ((st.q(1), st.q(1), Link::Off), (st.q(2), st.q(2), Link::On)),
            ((st.l(1), st.q(0), Link::Off), (st.q(2), st.l(1), Link::On)),
            ((st.l(1), st.q(1), Link::Off), (st.q(2), st.l(2), Link::On)),
            ((st.l(1), st.q(2), Link::On), (st.q(1), st.l(2), Link::On)),
            ((st.l(2), st.q(0), Link::Off), (st.l(3), st.q(1), Link::On)),
            ((st.l(2), st.l(1), Link::Off), (st.l(3), st.q(2), Link::On)),
            ((st.l(2), st.l(2), Link::Off), (st.l(3), st.l(3), Link::On)),
            ((st.l(3), st.q(1), Link::On), (st.l(2), st.q(0), Link::Off)),
            ((st.l(3), st.q(2), Link::On), (st.l(2), st.l(1), Link::Off)),
            ((st.l(3), st.l(1), Link::On), (st.l(2), st.q(0), Link::Off)),
            ((st.l(3), st.l(2), Link::On), (st.l(2), st.l(1), Link::Off)),
            ((st.l(3), st.l(3), Link::On), (st.l(2), st.l(2), Link::Off)),
        ];
        for ((a, b, link), want) in cases {
            if a != b {
                let got = p.interact(&a, &b, link, &mut rng).expect("rule defined");
                assert_eq!(got, want, "rule for ({a:?},{b:?},{link:?})");
            } else {
                // Symmetric inputs may be coin-flipped; compare as a set.
                let got = p.interact(&a, &b, link, &mut rng).expect("rule defined");
                let (wa, wb, wl) = want;
                assert!(
                    got == (wa, wb, wl) || got == (wb, wa, wl),
                    "rule for ({a:?},{a:?},{link:?}): got {got:?}"
                );
            }
        }
    }

    #[test]
    fn two_rc_constructs_spanning_ring() {
        for n in [3, 4, 5, 8, 12] {
            for seed in 0..3 {
                let sim = assert_stabilizes(
                    protocol(2),
                    n,
                    seed,
                    |p| is_stable(p, 2),
                    500_000_000,
                    60_000,
                );
                assert!(
                    is_spanning_ring(sim.population().edges()),
                    "2RC stable config must be a spanning ring (n={n}, seed={seed})"
                );
            }
        }
    }

    #[test]
    fn krc_constructs_relaxed_regular_networks() {
        for (k, n) in [(3u32, 8usize), (3, 12), (4, 10)] {
            for seed in 0..2 {
                let sim = assert_stabilizes(
                    protocol(k),
                    n,
                    seed,
                    |p| is_stable(p, k),
                    1_000_000_000,
                    60_000,
                );
                assert!(
                    is_krc_relaxed(sim.population().edges(), k),
                    "kRC stable config violates Theorem 11 (k={k}, n={n}, seed={seed}): {:?}",
                    sim.population().edges()
                );
            }
        }
    }

    #[test]
    fn state_records_degree_invariant() {
        let st = States { k: 3 };
        let mut sim = Simulation::new(protocol(3), 12, 77);
        for _ in 0..200 {
            sim.run_for(200);
            let pop = sim.population();
            for u in 0..pop.n() {
                assert_eq!(
                    st.degree_of(*pop.state(u)),
                    pop.edges().degree(u),
                    "state of node {u} must record its degree"
                );
            }
        }
    }

    #[test]
    fn every_component_keeps_a_leader() {
        let st = States { k: 2 };
        let mut sim = Simulation::new(protocol(2), 14, 3);
        for _ in 0..200 {
            sim.run_for(200);
            let pop = sim.population();
            for comp in netcon_graph::components::connected_components(pop.edges()) {
                if comp.len() == 1 && *pop.state(comp[0]) == st.q(0) {
                    continue; // isolated q0
                }
                let leaders = comp
                    .iter()
                    .filter(|&&u| st.is_leader(*pop.state(u)))
                    .count();
                assert!(leaders >= 1, "component {comp:?} lost its leader");
            }
        }
    }
}
