//! Protocol 1: **Simple-Global-Line** — the paper's smallest spanning-line
//! constructor (5 states; expected time between Ω(n⁴) and O(n⁵),
//! Theorem 3).
//!
//! ```text
//! Q = {q0, q1, q2, l, w}
//! (q0, q0, 0) → (q1, l, 1)    // two isolated nodes start a line
//! (l,  q0, 0) → (q2, l, 1)    // a leader endpoint expands towards a q0
//! (l,  l,  0) → (q2, w, 1)    // two lines merge; a walking leader appears
//! (w,  q2, 1) → (q2, w, 1)    // the walk moves along the line
//! (w,  q1, 1) → (q2, l, 1)    // the walk reaches an endpoint: leader again
//! ```
//!
//! Every reachable configuration is a collection of disjoint lines — each
//! with exactly one leader (`l` on an endpoint or `w` walking internally)
//! — plus isolated `q0` nodes.

use netcon_core::{
    EngineView, EnumerableMachine, FaultState, Link, Population, ProtocolBuilder, RuleProtocol,
    SparsePop, StateId,
};
use netcon_graph::components::connected_components;
use netcon_graph::properties::is_spanning_line;

/// `q0` — initial, isolated.
pub const Q0: StateId = StateId::new(0);
/// `q1` — non-leader endpoint of a line.
pub const Q1: StateId = StateId::new(1);
/// `q2` — internal line node.
pub const Q2: StateId = StateId::new(2);
/// `l` — leader occupying an endpoint.
pub const L: StateId = StateId::new(3);
/// `w` — leader walking in the interior after a merge.
pub const W: StateId = StateId::new(4);

/// Builds Protocol 1.
#[must_use]
pub fn protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("Simple-Global-Line");
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let q2 = b.state("q2");
    let l = b.state("l");
    let w = b.state("w");
    b.rule((q0, q0, Link::Off), (q1, l, Link::On));
    b.rule((l, q0, Link::Off), (q2, l, Link::On));
    b.rule((l, l, Link::Off), (q2, w, Link::On));
    b.rule((w, q2, Link::On), (q2, w, Link::On));
    b.rule((w, q1, Link::On), (q2, l, Link::On));
    b.build().expect("Protocol 1 is well-formed")
}

/// Certifies output stability: the active graph is a spanning line.
///
/// Once the active graph spans all nodes as a single line there are no
/// `q0`s left and only one component (hence one leader), so none of the
/// three edge-activating rules can ever fire again (Theorem 3's
/// correctness argument).
#[must_use]
pub fn is_stable(pop: &Population<StateId>) -> bool {
    is_spanning_line(pop.edges())
}

/// [`is_stable`] for the sparse engine, in O(1): every reachable
/// configuration is a disjoint union of lines plus isolated `q0`s (the
/// [`census`] invariant), i.e. a forest — so the active graph is a
/// spanning line **iff** it has `n − 1` active edges. Fires at exactly
/// the same step as the dense predicate, with no Θ(n²) structure.
#[must_use]
pub fn is_stable_sparse(sp: &SparsePop) -> bool {
    sp.active_count() + 1 == sp.n()
}

/// [`is_stable_sparse`] over an engine-selection view
/// ([`Engine`](netcon_core::Engine)-driven sweeps), same O(1) argument.
#[must_use]
pub fn is_stable_view<M: EnumerableMachine>(v: &EngineView<'_, M>) -> bool {
    v.active_count() + 1 == v.n()
}

/// [`is_stable_view`] relative to the alive population of a faulted run:
/// the active graph spans the alive nodes as a single line **iff** it
/// has `alive − 1` active edges. Crashed and not-yet-arrived nodes keep
/// degree 0, and an arrival is a fresh isolated `q0` — so arrival-only
/// fault histories preserve the reachable-shape invariant and the O(1)
/// edge-count test stays exact. After a *crash* the invariant can break
/// (a leaderless line fragment), and since no rule mentions `q2` as a
/// merge partner the protocol never repairs it: the predicate is then
/// simply unreachable, which is the honest reading.
#[must_use]
pub fn is_stable_faulted<M: EnumerableMachine>(v: &EngineView<'_, M>, fs: &FaultState) -> bool {
    v.active_count() + 1 == fs.alive_count()
}

/// A census of one configuration, matching the picture in Fig. 2 of the
/// paper: coexisting lines led by an `l` endpoint or a `w` walker, plus
/// isolated `q0`s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Census {
    /// Isolated nodes still in `q0`.
    pub isolated: usize,
    /// Line components whose leader is an endpoint `l`.
    pub lines_with_endpoint_leader: usize,
    /// Line components whose leader is a walking `w`.
    pub lines_with_walking_leader: usize,
    /// Lengths (in nodes) of all line components, sorted ascending.
    pub line_lengths: Vec<usize>,
}

/// Takes the census of a Simple-Global-Line configuration.
///
/// # Panics
///
/// Panics if the configuration violates the protocol's reachable-shape
/// invariant (each non-singleton component is a line with exactly one
/// leader) — which would indicate an engine or transcription bug.
#[must_use]
pub fn census(pop: &Population<StateId>) -> Census {
    let mut out = Census::default();
    for comp in connected_components(pop.edges()) {
        if comp.len() == 1 {
            let u = comp[0];
            assert_eq!(
                *pop.state(u),
                Q0,
                "singleton component must be q0 (node {u})"
            );
            out.isolated += 1;
            continue;
        }
        let leaders = comp
            .iter()
            .filter(|&&u| *pop.state(u) == L || *pop.state(u) == W)
            .count();
        assert_eq!(leaders, 1, "every line has exactly one leader: {comp:?}");
        let endpoints = comp
            .iter()
            .filter(|&&u| pop.edges().degree(u) == 1)
            .count();
        assert_eq!(endpoints, 2, "component is not a line: {comp:?}");
        if comp.iter().any(|&u| *pop.state(u) == W) {
            out.lines_with_walking_leader += 1;
        } else {
            out.lines_with_endpoint_leader += 1;
        }
        out.line_lengths.push(comp.len());
    }
    out.line_lengths.sort_unstable();
    out
}

/// Runs the protocol and counts how many *length-1 lines* (single active
/// edges created by `(q0, q0, 0) → (q1, l, 1)`) appear over the whole
/// execution — the quantity the Ω(n⁴) lower-bound proof of Theorem 3 shows
/// is Θ(n) w.h.p.
///
/// Runs on the event-driven engine ([`EventSim`](netcon_core::EventSim)),
/// which skips the ineffective draws that dominate this Θ(n⁴)-time
/// protocol; the count's distribution is identical to stepping naively.
#[must_use]
pub fn count_fresh_lines(n: usize, seed: u64, max_steps: u64) -> u64 {
    use netcon_core::{EventSim, EventStep, StepResult};
    let q0 = Q0;
    let mut sim = EventSim::new(protocol().compile(), n, seed);
    let mut fresh = 0u64;
    loop {
        // Detect (q0, q0) pairings by watching state counts around an
        // applied interaction (only rule 1 consumes two q0s at once).
        let before = sim.population().count_where(|s| *s == q0);
        match sim.advance(max_steps) {
            EventStep::Quiescent | EventStep::BudgetExhausted => break,
            EventStep::Candidate {
                result: StepResult::Effective { .. },
                ..
            } => {
                let after = sim.population().count_where(|s| *s == q0);
                if before - after == 2 {
                    fresh += 1;
                }
                if is_stable(sim.population()) {
                    break;
                }
            }
            EventStep::Candidate { .. } => {}
        }
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::{assert_stabilizes, assert_stabilizes_event};
    use netcon_core::{Machine, RoundRobin, Simulation};

    #[test]
    fn paper_metadata() {
        let p = protocol();
        assert_eq!(p.size(), 5, "Table 2: Simple-Global-Line uses 5 states");
        assert_eq!(p.rules().len(), 5);
        assert_eq!(p.initial_state(), Q0);
        for (name, id) in [("q0", Q0), ("q1", Q1), ("q2", Q2), ("l", L), ("w", W)] {
            assert_eq!(p.state(name), Some(id));
        }
    }

    #[test]
    fn constructs_spanning_line_small() {
        for n in [2, 3, 4, 5] {
            for seed in 0..3 {
                // Keep the naive engine on the smallest sizes: it is the
                // reference semantics the event engine is checked against.
                let sim = assert_stabilizes(protocol(), n, seed, is_stable, 80_000_000, 40_000);
                assert!(is_spanning_line(sim.population().edges()));
                assert!(sim.is_quiescent(), "final line configuration quiesces");
            }
        }
        for n in [8, 16, 24] {
            for seed in 0..5 {
                // The follow-up window must outlast the last walker's
                // O(n²)-move random walk (output-stable but not yet
                // quiescent); steps are nearly free on the event engine.
                let sim = assert_stabilizes_event(
                    protocol().compile(),
                    n,
                    seed,
                    is_stable,
                    80_000_000_000,
                    5_000_000,
                );
                assert!(is_spanning_line(sim.population().edges()));
                assert!(sim.is_quiescent(), "final line configuration quiesces");
            }
        }
    }

    #[test]
    fn constructs_spanning_line_medium() {
        let sim =
            assert_stabilizes_event(protocol().compile(), 48, 99, is_stable, u64::MAX, 50_000);
        // Exactly one leader endpoint remains.
        assert_eq!(sim.population().count_where(|s| *s == L), 1);
        assert_eq!(sim.population().count_where(|s| *s == Q1), 1);
        assert_eq!(sim.population().count_where(|s| *s == Q0), 0);
    }

    #[test]
    fn census_invariants_hold_throughout() {
        let mut sim = Simulation::new(protocol(), 20, 7);
        for _ in 0..200 {
            sim.run_for(500);
            let c = census(sim.population()); // asserts the shape invariant
            let nodes_in_lines: usize = c.line_lengths.iter().sum();
            assert_eq!(nodes_in_lines + c.isolated, 20, "nodes are conserved");
        }
    }

    #[test]
    fn works_under_round_robin_scheduler() {
        let sim = Simulation::with_scheduler(protocol(), 8, 3, RoundRobin::new());
        let sim = netcon_core::testing::assert_stabilizes_sim(sim, is_stable, 20_000_000, 10_000);
        assert!(is_spanning_line(sim.population().edges()));
    }

    #[test]
    fn absorbs_arrivals_into_the_line() {
        use netcon_core::{Engine, FaultEvent, FaultPlan};
        // Stabilize on 8 nodes, admit two fresh q0s, and check the line
        // re-spans the enlarged population: `(l, q0, 0) → (q2, l, 1)`
        // extends the line from its leader endpoint.
        let n = 8;
        let plan = FaultPlan::new(11)
            .at(u64::MAX, FaultEvent::Arrive)
            .at(u64::MAX, FaultEvent::Arrive);
        let mut eng = Engine::auto_faulted(protocol().compile(), n, 5, plan);
        let fs0 = eng.fault_state().expect("faulted").clone();
        eng.run_until(|v| is_stable_faulted(v, &fs0), 10_000_000_000)
            .converged_at()
            .expect("phase 1 stabilizes");
        eng.apply_faults_now();
        let fs1 = eng.fault_state().expect("faulted").clone();
        assert_eq!(fs1.alive_count(), n + 2);
        eng.run_until(|v| is_stable_faulted(v, &fs1), eng.steps() + 10_000_000_000)
            .converged_at()
            .expect("the line absorbs both arrivals");
        let pop = eng.to_population();
        assert!(is_spanning_line(pop.edges()), "line re-spans n + 2 nodes");
        assert_eq!(census(&pop).line_lengths, vec![n + 2]);
    }

    #[test]
    fn crashes_are_not_self_repaired() {
        use netcon_core::{Engine, FaultEvent, FaultPlan};
        // A crash splits the stable line; the fragment without the
        // leader is all q1/q2, which no rule can ever touch again. The
        // honest result is an immediately-quiescent damaged network.
        let n = 10;
        let plan = FaultPlan::new(3).at(u64::MAX, FaultEvent::CrashRandom);
        let mut eng = Engine::auto_faulted(protocol().compile(), n, 7, plan);
        let fs0 = eng.fault_state().expect("faulted").clone();
        eng.run_until(|v| is_stable_faulted(v, &fs0), 10_000_000_000)
            .converged_at()
            .expect("phase 1 stabilizes");
        // Output stability can precede quiescence: a walking leader may
        // still traverse the finished line (effective steps that change
        // no edge). Let the walk finish so the only activity that could
        // follow is a reaction to the crash.
        eng.run_faulted_to(eng.steps() + 5_000_000);
        let quiesced = eng.effective_steps();
        eng.run_faulted_to(eng.steps() + 1_000_000);
        assert_eq!(eng.effective_steps(), quiesced, "walker has parked");
        eng.apply_faults_now();
        assert_eq!(eng.fault_state().expect("faulted").alive_count(), n - 1);
        let eff = eng.effective_steps();
        let target = eng.steps() + 2_000_000;
        eng.run_faulted_to(target);
        assert_eq!(
            eng.effective_steps(),
            eff,
            "no Simple-Global-Line rule re-fires after a crash"
        );
    }

    #[test]
    fn fresh_line_count_is_linear() {
        // Theorem 3's w.h.p. bound: at least (n − 2√(cn ln n) − 2)/16.
        let n = 64;
        let fresh = count_fresh_lines(n, 5, 2_000_000_000);
        assert!(
            fresh as f64 >= (n as f64) / 16.0 - 2.0,
            "expected ≥ n/16 − 2 fresh length-1 lines, got {fresh}"
        );
        assert!(fresh <= (n / 2) as u64, "at most n/2 pairings are possible");
    }
}
