//! Protocol 5: **Global-Ring** — constructs a spanning ring (10 states;
//! Theorem 9; the Ω(n²) lower bound is Theorem 8).
//!
//! The protocol extends Simple-Global-Line: an `l`-leader endpoint may
//! additionally connect to a `q1` endpoint (closing its own line into a
//! ring, or joining another line). The two endpoints then become *blocked*
//! (`l'`, `q2'`). A blocked node that detects evidence of another
//! component — any node in `{l, l̄, w, q1, q0}` or another blocked node,
//! met over an *inactive* edge — marks itself double-primed, and a
//! double-primed pair backtracks: the closing edge is deactivated and both
//! endpoints return to their unblocked states. Only a truly spanning ring
//! (where no such evidence exists) stays closed forever.
//!
//! Lines of length 1 get the special leader state `l̄` which cannot close;
//! this is the journal version's fix to the PODC'14 bug (see the footnote
//! to Theorem 9).
//!
//! ```text
//! Q = {q0, q1, q2, l, w, l', l'', q2', q2'', l̄}
//! (q0, q0, 0) → (q1, l̄, 1)
//! (x,  q0, 0) → (q2, l, 1)                 x ∈ {l, l̄}
//! (x,  y,  0) → (q2, w, 1)                 x, y ∈ {l, l̄}   // merge
//! (w,  q2, 1) → (q2, w, 1)
//! (w,  q1, 1) → (q2, l, 1)
//! (l,  q1, 0) → (l', q2', 1)                               // close
//! (x', y,  0) → (x'', y, 0)     x ∈ {l, q2}, y ∈ {l, l̄, w, q1, q0}
//! (x', y', 0) → (x'', y'', 0)   x, y ∈ {l, q2}             // detect
//! (l'', q2', 1) → (l, q1, 0)
//! (l',  q2'', 1) → (l, q1, 0)                              // reopen
//! (l'', q2'', 1) → (l, q1, 0)
//! ```
//!
//! The paper's `(x, y, 0) → (q2, w, 1)` for `x, y ∈ {l, l̄}` defines both
//! orders of the mixed pair; since δ is a partial function on unordered
//! pairs we canonicalize the mixed rule as `(l, l̄, 0) → (q2, w, 1)` (which
//! of the two merging leaders keeps walking is immaterial).

use netcon_core::{Link, Population, ProtocolBuilder, RuleProtocol, StateId};
use netcon_graph::properties::is_spanning_ring;

/// `q0` — initial, isolated.
pub const Q0: StateId = StateId::new(0);
/// `q1` — non-leader endpoint.
pub const Q1: StateId = StateId::new(1);
/// `q2` — internal line/ring node.
pub const Q2: StateId = StateId::new(2);
/// `l` — leader endpoint of a line of length ≥ 2 edges.
pub const L: StateId = StateId::new(3);
/// `w` — walking leader after a merge.
pub const W: StateId = StateId::new(4);
/// `l'` — blocked leader endpoint of a closed ring.
pub const LP: StateId = StateId::new(5);
/// `l''` — blocked leader that has detected another component.
pub const LPP: StateId = StateId::new(6);
/// `q2'` — blocked non-leader endpoint of a closed ring.
pub const Q2P: StateId = StateId::new(7);
/// `q2''` — blocked non-leader that has detected another component.
pub const Q2PP: StateId = StateId::new(8);
/// `l̄` — leader of a line of length 1 (may not close).
pub const LB: StateId = StateId::new(9);

/// Builds Protocol 5.
#[must_use]
pub fn protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("Global-Ring");
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let q2 = b.state("q2");
    let l = b.state("l");
    let w = b.state("w");
    let lp = b.state("l'");
    let lpp = b.state("l''");
    let q2p = b.state("q2'");
    let q2pp = b.state("q2''");
    let lb = b.state("l_bar");

    // Normal behaviour begins only after a line has length 2 (edges).
    b.rule((q0, q0, Link::Off), (q1, lb, Link::On));
    for x in [l, lb] {
        b.rule((x, q0, Link::Off), (q2, l, Link::On));
    }
    // Merging: a walking w-leader starts.
    b.rule((l, l, Link::Off), (q2, w, Link::On));
    b.rule((lb, lb, Link::Off), (q2, w, Link::On));
    b.rule((l, lb, Link::Off), (q2, w, Link::On));
    b.rule((w, q2, Link::On), (q2, w, Link::On));
    b.rule((w, q1, Link::On), (q2, l, Link::On));
    // l connecting to a q1 endpoint, possibly closing its own line.
    b.rule((l, q1, Link::Off), (lp, q2p, Link::On));
    // Another component detected: a closed ring must open.
    for (x, xpp) in [(lp, lpp), (q2p, q2pp)] {
        for y in [l, lb, w, q1, q0] {
            b.rule((x, y, Link::Off), (xpp, y, Link::Off));
        }
    }
    for (x, xpp) in [(lp, lpp), (q2p, q2pp)] {
        for (y, ypp) in [(lp, lpp), (q2p, q2pp)] {
            b.rule((x, y, Link::Off), (xpp, ypp, Link::Off));
        }
    }
    // Opening closed rings.
    b.rule((lpp, q2p, Link::On), (l, q1, Link::Off));
    b.rule((lp, q2pp, Link::On), (l, q1, Link::Off));
    b.rule((lpp, q2pp, Link::On), (l, q1, Link::Off));
    b.build().expect("Protocol 5 is well-formed")
}

/// Certifies output stability: a spanning ring whose closing pair is
/// still blocked in single-primed states (`l'`, `q2'`, adjacent), all
/// other nodes `q2`.
///
/// In such a configuration no unprimed/evidence state exists anywhere, so
/// the detection rules can never fire and the ring can never reopen.
#[must_use]
pub fn is_stable(pop: &Population<StateId>) -> bool {
    let lps = pop.nodes_where(|s| *s == LP);
    let q2ps = pop.nodes_where(|s| *s == Q2P);
    lps.len() == 1
        && q2ps.len() == 1
        && pop.count_where(|s| *s == Q2) == pop.n() - 2
        && pop.edges().is_active(lps[0], q2ps[0])
        && is_spanning_ring(pop.edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes;
    use netcon_core::Simulation;

    #[test]
    fn paper_metadata() {
        let p = protocol();
        assert_eq!(p.size(), 10, "Protocol 5 uses 10 states");
    }

    #[test]
    fn constructs_spanning_ring() {
        for n in [3, 4, 5, 8, 12] {
            for seed in 0..3 {
                let sim =
                    assert_stabilizes(protocol(), n, seed, is_stable, 300_000_000, 60_000);
                assert!(is_spanning_ring(sim.population().edges()));
                assert!(sim.is_quiescent(), "stable ring quiesces");
            }
        }
    }

    #[test]
    fn premature_ring_reopens() {
        // A closed 3-ring coexisting with an isolated q0 must reopen and
        // eventually absorb the q0 into a spanning 4-ring.
        let mut pop = Population::new(4, Q0);
        pop.set_state(0, LP);
        pop.set_state(1, Q2P);
        pop.set_state(2, Q2);
        // node 3 stays q0.
        pop.edges_mut().activate(0, 1);
        pop.edges_mut().activate(1, 2);
        pop.edges_mut().activate(2, 0);
        assert!(!is_stable(&pop), "ring of 3 over 4 nodes is not spanning");
        let sim = Simulation::from_population(protocol(), pop, 9);
        let sim = netcon_core::testing::assert_stabilizes_sim(sim, is_stable, 50_000_000, 30_000);
        assert!(is_spanning_ring(sim.population().edges()));
        assert_eq!(sim.population().edges().n(), 4);
    }

    #[test]
    fn single_edge_lines_never_close() {
        // l̄ has no closing rule: a 2-node population stabilizes as a line
        // (a ring on 2 nodes does not exist).
        let mut sim = Simulation::new(protocol(), 2, 0);
        sim.run_for(100_000);
        assert_eq!(sim.population().edges().active_count(), 1);
        let states: Vec<_> = sim.population().states().to_vec();
        assert!(states.contains(&Q1) && states.contains(&LB));
        assert!(sim.is_quiescent());
    }
}
