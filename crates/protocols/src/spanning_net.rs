//! The spanning-network protocol of Theorem 1 — the matching upper bound
//! for the generic Ω(n log n) lower bound on constructing any spanning
//! network (2 states, Θ(n log n) expected time).
//!
//! It is the node-cover process with edge activations attached: every
//! transition that converts an `a` activates the corresponding edge, so
//! once every node has interacted at least once, every node has an active
//! incident edge.
//!
//! ```text
//! Q = {a, b}
//! (a, a, 0) → (b, b, 1)
//! (a, b, 0) → (b, b, 1)
//! ```

use netcon_core::{Link, Population, ProtocolBuilder, RuleProtocol, StateId};

/// `a` — has not interacted yet.
pub const A: StateId = StateId::new(0);
/// `b` — covered (has an active incident edge).
pub const B: StateId = StateId::new(1);

/// Builds the Theorem 1 protocol.
#[must_use]
pub fn protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("Spanning-Net");
    let a = b.state("a");
    let bb = b.state("b");
    b.rule((a, a, Link::Off), (bb, bb, Link::On));
    b.rule((a, bb, Link::Off), (bb, bb, Link::On));
    b.build().expect("Theorem 1 protocol is well-formed")
}

/// Certifies output stability: no `a` remains (every rule needs an `a`).
#[must_use]
pub fn is_stable(pop: &Population<StateId>) -> bool {
    pop.count_where(|s| *s == A) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes;
    use netcon_graph::properties::is_spanning_net;

    #[test]
    fn paper_metadata() {
        let p = protocol();
        assert_eq!(p.size(), 2);
        assert_eq!(p.rules().len(), 2);
    }

    #[test]
    fn constructs_spanning_network() {
        for n in [2, 3, 7, 16, 64] {
            for seed in 0..3 {
                let sim = assert_stabilizes(protocol(), n, seed, is_stable, 10_000_000, 20_000);
                assert!(
                    is_spanning_net(sim.population().edges()),
                    "every node must have an active incident edge (n={n})"
                );
                assert!(sim.is_quiescent());
            }
        }
    }
}
