//! **FT-Spanning-Line** — the restart/waste-based fault-tolerant
//! spanning-line constructor in the crash-notification model of "Fault
//! Tolerant Network Constructors" (arXiv 1903.05992), layered over the
//! paper's Protocol 1 (Simple-Global-Line).
//!
//! ```text
//! Q = {q0, q1, q2, l, w, r1},  q0 initial
//! (q0, q0, 0) → (q1, l, 1)    // two isolated nodes start a line
//! (l,  q0, 0) → (q2, l, 1)    // a leader endpoint expands towards a q0
//! (l,  l,  0) → (q2, w, 1)    // two lines merge; a walking leader appears
//! (w,  q2, 1) → (q2, w, 1)    // the walk moves along the line
//! (w,  q1, 1) → (q2, l, 1)    // the walk reaches an endpoint: leader again
//! (r1, q2, 1) → (q0, r1, 0)   // restart wave eats inward
//! (r1, w,  1) → (q0, r1, 0)   //   (a walker is interior, degree 2)
//! (r1, q1, 1) → (q0, q0, 0)   // wave reaches the far endpoint
//! (r1, l,  1) → (q0, q0, 0)   //   (leader endpoint likewise)
//! (r1, r1, 1) → (q0, q0, 0)   // two waves meet mid-fragment
//! notify: q1 → q0, l → q0, q2 → r1, w → r1, r1 → q0
//! ```
//!
//! PR 6's `crashes_are_not_self_repaired` regression proves plain
//! Simple-Global-Line freezes after any crash: the leaderless fragment
//! is all `q1`/`q2`, which no rule mentions. The restart technique of
//! 1903.05992 repairs this *wastefully*: a notified node does not try
//! to patch the break (a notified `q2` promoting itself to a fresh
//! leader could put two leaders in one component, whose `(l, l, 0)`
//! merge would close a cycle and trap the walker forever). Instead it
//! enters the restart state `r1` and dissolves its entire fragment back
//! to isolated `q0`s, one edge per interaction, and the ordinary rules
//! rebuild the line from scratch.
//!
//! The construction leans on Simple-Global-Line's *degree invariant*:
//! every state determines its node's active degree exactly (`q0`: 0,
//! `q1`: 1, `q2`: 2, `l`: 1, `w`: 2 — check each rule). Losing one
//! edge therefore tells a node exactly how many remain: `q1`/`l` are
//! isolated now (notify to `q0`), `q2`/`w` have exactly one left
//! (notify to `r1`, "restarting with one edge to consume"), and a
//! second notification on an `r1` means its last edge died with its
//! second neighbour (back to `q0`). The wave rules keep the invariant:
//! `r1` always holds exactly one active edge, and no rule ever gives
//! it a new one.

use netcon_core::{
    EngineView, EnumerableMachine, FaultState, Link, Population, ProtocolBuilder, RuleProtocol,
    SparsePop, StateId,
};

/// `q0` — initial, isolated.
pub const Q0: StateId = StateId::new(0);
/// `q1` — non-leader endpoint of a line.
pub const Q1: StateId = StateId::new(1);
/// `q2` — internal line node.
pub const Q2: StateId = StateId::new(2);
/// `l` — leader occupying an endpoint.
pub const L: StateId = StateId::new(3);
/// `w` — leader walking in the interior after a merge.
pub const W: StateId = StateId::new(4);
/// `r1` — restarting: exactly one active edge left to dissolve.
pub const R1: StateId = StateId::new(5);

/// Builds FT-Spanning-Line.
#[must_use]
pub fn protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("FT-Spanning-Line");
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let q2 = b.state("q2");
    let l = b.state("l");
    let w = b.state("w");
    let r1 = b.state("r1");
    b.rule((q0, q0, Link::Off), (q1, l, Link::On));
    b.rule((l, q0, Link::Off), (q2, l, Link::On));
    b.rule((l, l, Link::Off), (q2, w, Link::On));
    b.rule((w, q2, Link::On), (q2, w, Link::On));
    b.rule((w, q1, Link::On), (q2, l, Link::On));
    b.rule((r1, q2, Link::On), (q0, r1, Link::Off));
    b.rule((r1, w, Link::On), (q0, r1, Link::Off));
    b.rule((r1, q1, Link::On), (q0, q0, Link::Off));
    b.rule((r1, l, Link::On), (q0, q0, Link::Off));
    b.rule((r1, r1, Link::On), (q0, q0, Link::Off));
    b.on_crash(q1, q0);
    b.on_crash(l, q0);
    b.on_crash(q2, r1);
    b.on_crash(w, r1);
    b.on_crash(r1, q0);
    b.build().expect("FT-Spanning-Line is well-formed")
}

/// Certifies output stability of a fault-free run: the active graph is
/// a spanning line. Fault-free, `r1` is unreachable (only the notify
/// map creates it), so this coincides with Simple-Global-Line.
#[must_use]
pub fn is_stable(pop: &Population<StateId>) -> bool {
    netcon_graph::properties::is_spanning_line(pop.edges())
}

/// [`is_stable`] over an engine-selection view in O(1): reachable
/// configurations stay forests (restart waves only *remove* edges, and
/// the base rules only join distinct components), so spanning-line ⇔
/// `n − 1` active edges, exactly as for the baseline protocol.
#[must_use]
pub fn is_stable_view<M: EnumerableMachine>(v: &EngineView<'_, M>) -> bool {
    v.active_count() + 1 == v.n()
}

/// The fault-mode stability predicate, O(1): the active graph spans the
/// alive nodes as a single line iff it has `alive − 1` active edges
/// (crashed and not-yet-arrived nodes keep degree 0, and the forest
/// invariant holds through restarts). Where plain Simple-Global-Line's
/// faulted predicate becomes unreachable after any crash, the restart
/// wave makes this one re-entered after every burst.
#[must_use]
pub fn is_stable_faulted<M: EnumerableMachine>(v: &EngineView<'_, M>, fs: &FaultState) -> bool {
    v.active_count() + 1 == fs.alive_count()
}

/// [`is_stable_faulted`] over a dense population snapshot — the form
/// the naive and event engines' `run_faulted_until` consume.
#[must_use]
pub fn is_stable_faulted_pop(pop: &Population<StateId>, fs: &FaultState) -> bool {
    pop.edges().active_count() + 1 == fs.alive_count()
}

/// [`is_stable_faulted`] over the sparse view — the form
/// [`BucketSim::run_faulted_until`](netcon_core::BucketSim) consumes.
#[must_use]
pub fn is_stable_faulted_sparse(sp: &SparsePop, fs: &FaultState) -> bool {
    sp.active_count() + 1 == fs.alive_count()
}

/// The state-determined active degree of Simple-Global-Line's invariant,
/// extended to `r1` — what the notify map is derived from.
#[must_use]
pub fn invariant_degree(s: StateId) -> usize {
    match s {
        Q0 => 0,
        Q1 | L | R1 => 1,
        Q2 | W => 2,
        _ => unreachable!("not an FT-Spanning-Line state"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes_event;
    use netcon_core::{ChurnPlan, Engine, FaultEvent, FaultPlan, Simulation};
    use netcon_graph::properties::is_spanning_line;

    #[test]
    fn metadata_and_notify_map() {
        let p = protocol();
        assert_eq!(p.size(), 6);
        assert_eq!(p.rules().len(), 10);
        for (from, to) in [(Q1, Q0), (L, Q0), (Q2, R1), (W, R1), (R1, Q0)] {
            assert_eq!(p.crash_notify_target(from), Some(to));
        }
        assert_eq!(p.crash_notify_target(Q0), None);
    }

    #[test]
    fn degree_invariant_holds_throughout() {
        // The invariant the notify map is derived from: every state
        // pins its node's exact active degree, through faults included.
        let n = 14;
        let plan = FaultPlan::new(6)
            .at(300, FaultEvent::CrashRandom)
            .at(900, FaultEvent::CrashRandom)
            .at(1_500, FaultEvent::Arrive);
        let mut sim = Simulation::new_faulted(protocol(), n, 2, plan);
        for _ in 0..40 {
            sim.run_faulted_to(sim.steps() + 100);
            let fs = sim.fault_state().expect("faulted").clone();
            let pop = sim.population();
            for u in 0..fs.capacity() {
                if fs.is_alive(u) {
                    assert_eq!(
                        pop.edges().degree(u) as usize,
                        invariant_degree(*pop.state(u)),
                        "node {u} in {:?} at step {}",
                        pop.state(u),
                        sim.steps(),
                    );
                }
            }
        }
    }

    #[test]
    fn constructs_spanning_line_fault_free() {
        for (n, seed) in [(4, 0), (8, 1), (16, 2)] {
            let sim = assert_stabilizes_event(
                protocol().compile(),
                n,
                seed,
                is_stable,
                80_000_000_000,
                5_000_000,
            );
            assert!(is_spanning_line(sim.population().edges()));
            assert_eq!(sim.population().count_where(|s| *s == R1), 0);
        }
    }

    #[test]
    fn restart_wave_repairs_the_crash_simple_global_line_cannot() {
        // Same shape as simple_global_line's
        // `crashes_are_not_self_repaired` (which proves the baseline
        // freezes): stabilize, crash a random node — but here the
        // restart wave dissolves both fragments and the line re-spans
        // the survivors.
        let n = 10;
        let plan = FaultPlan::new(3).at(u64::MAX, FaultEvent::CrashRandom);
        let mut eng = Engine::auto_faulted(protocol().compile(), n, 7, plan);
        let fs0 = eng.fault_state().expect("faulted").clone();
        eng.run_until(|v| is_stable_faulted(v, &fs0), 10_000_000_000)
            .converged_at()
            .expect("phase 1 stabilizes");
        eng.apply_faults_now();
        let fs1 = eng.fault_state().expect("faulted").clone();
        assert_eq!(fs1.alive_count(), n - 1);
        eng.run_until(|v| is_stable_faulted(v, &fs1), u64::MAX)
            .converged_at()
            .expect("the restart wave rebuilds a line over the survivors");
        let pop = eng.to_population();
        let alive: Vec<usize> = (0..n).filter(|&u| fs1.is_alive(u)).collect();
        assert!(
            is_spanning_line(&pop.edges().induced(&alive)),
            "survivors form a line"
        );
    }

    #[test]
    fn cut_at_walker_is_outside_the_crash_model_and_strands_the_walk() {
        // The notify map repairs *crashes*: a lost neighbour tells a
        // node its new degree. Edge deletions carry no notification,
        // and an adaptive adversary that severs the line exactly at a
        // live walker exploits that: the walker keeps state `w` at
        // degree 0, no rule ever creates an edge at a `w` (every
        // edge-creating rule needs `q0` or `l`), and no notification
        // can reach a node with no neighbours — so the survivors can
        // never span. FT-line is fault-tolerant strictly within the
        // crash model of 1903.05992.
        use netcon_core::{AdversaryPlan, AdversaryPolicy, Cadence};
        let n = 12;
        let plan = FaultPlan::new(5).with_adversary(
            AdversaryPlan::new(Cadence::Periodic {
                start: 40,
                every: 40,
                count: 1500,
            })
            .policy(AdversaryPolicy::CutAtWalker(W.index())),
        );
        let mut eng = Engine::auto_faulted(protocol().compile(), n, 9, plan);
        eng.run_faulted_to(40 * 1500);
        let fs = eng.fault_state().expect("faulted").clone();
        assert_eq!(fs.next_at(), None, "all decisions taken");
        assert!(
            fs.adversary_spent() >= 2,
            "a strike caught a live walker (2 severed edges), spent {}",
            fs.adversary_spent()
        );
        assert_eq!(fs.alive_count(), n, "edge cuts crash nobody");
        let now = eng.steps();
        assert!(
            eng.run_faulted_until(|v, _| is_stable_faulted(v, &fs), now + 5_000_000)
                .converged_at()
                .is_none(),
            "the stranded walker keeps the line from ever spanning"
        );
        let pop = eng.to_population();
        let stranded: Vec<usize> = (0..n)
            .filter(|&u| *pop.state(u) == W && pop.edges().degree(u) == 0)
            .collect();
        assert!(!stranded.is_empty(), "a walker is stuck in `w` with no edges");
    }

    #[test]
    fn rides_sustained_churn_to_a_line_over_the_survivors() {
        let n = 10;
        let plan = ChurnPlan::new(13)
            .arrival_rate(1e-4)
            .departure_rate(1e-4)
            .min_alive(5)
            .horizon(60_000)
            .compile(n);
        let mut eng = Engine::auto_faulted(protocol().compile(), n, 23, plan);
        let fs = eng.fault_state().expect("faulted").project_final();
        eng.run_faulted_until(|v, _| is_stable_faulted(v, &fs), u64::MAX)
            .converged_at()
            .expect("re-stabilizes once the churn stream ends");
        assert!(fs.alive_count() >= 5, "floor held");
    }
}
