//! Protocol 9: **Graph-Replication** — copies a connected input graph
//! `G₁ = (V₁, E₁)` onto a disjoint set of nodes `V₂` with no waste
//! (12 states, randomized, Θ(n⁴ log n) expected time; Theorem 13).
//!
//! The input is part of the initial configuration: `V₁` nodes start in
//! `q0` with the edges of `E₁` active, `V₂` nodes start in `r0`. The
//! protocol (i) matches every `V₁` node to a distinct `V₂` node,
//! (ii) elects a unique leader on `V₁` by pairwise elimination, and
//! (iii) lets the leader random-walk over `V₁`: on meeting a follower it
//! flips a fair coin to either swap (walk) or mark the pair with the state
//! of the edge between them (`a`ctive / `d`eactive). Marked nodes tell
//! their matched `V₂` nodes, which copy the value onto the corresponding
//! `V₂` edge and acknowledge back.
//!
//! Output states are `Q_out = {r, ra, rd}` — only the replica is output.
//!
//! ```text
//! Q = {q0, r0, l, la, ld, f, fa, fd, r, ra, rd, r'}
//! (q0, r0, 0) → (l, r, 1)                       // matching
//! (l, l, x) → (l, f, x)                         // leader election
//! (l, f, 0) →½ (ld, fd, 0)  |  →½ (f, l, 0)     // mark a non-edge / walk
//! (l, f, 1) →½ (la, fa, 1)  |  →½ (f, l, 1)     // mark an edge / walk
//! (xi, r, 1) → (xi, ri, 1)      x ∈ {l, f}, i ∈ {a, d}
//! (ra, ra, ·) → (r', r', 1)                     // copy an activation
//! (rd, rd, ·) → (r', r', 0)                     // copy a deactivation
//! (r', xi, 1) → (r, x, 1)                       // acknowledge
//! (li, l, x) → (li, f, x)       i ∈ {a, d}      // marked leaders still
//! (li, lj, x) → (li, fj, x)     i, j ∈ {a, d}   // eliminate
//! ```

use netcon_core::{Link, Population, ProtocolBuilder, RuleProtocol, StateId};
use netcon_graph::EdgeSet;

/// `q0` — unmatched `V₁` node.
pub const Q0: StateId = StateId::new(0);
/// `r0` — unmatched `V₂` node.
pub const R0: StateId = StateId::new(1);
/// `l` — `V₁` leader.
pub const L: StateId = StateId::new(2);
/// `la` — leader marked "copy an activation".
pub const LA: StateId = StateId::new(3);
/// `ld` — leader marked "copy a deactivation".
pub const LD: StateId = StateId::new(4);
/// `f` — `V₁` follower.
pub const F: StateId = StateId::new(5);
/// `fa` — follower marked "copy an activation".
pub const FA: StateId = StateId::new(6);
/// `fd` — follower marked "copy a deactivation".
pub const FD: StateId = StateId::new(7);
/// `r` — matched `V₂` node (output state).
pub const R: StateId = StateId::new(8);
/// `ra` — `V₂` node told to activate (output state).
pub const RA: StateId = StateId::new(9);
/// `rd` — `V₂` node told to deactivate (output state).
pub const RD: StateId = StateId::new(10);
/// `r'` — `V₂` node that has copied, awaiting acknowledgement.
pub const RP: StateId = StateId::new(11);

/// Builds Protocol 9.
///
/// The paper's `(li, lj, x) → (li, fj, x)` is written for all
/// `i, j ∈ {a, d}`; as δ is a partial function on unordered pairs, the
/// mixed pair is canonicalized to `(la, ld, x) → (la, fd, x)`.
#[must_use]
pub fn protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("Graph-Replication");
    let q0 = b.state("q0");
    let r0 = b.state("r0");
    let l = b.state("l");
    let la = b.state("la");
    let ld = b.state("ld");
    let f = b.state("f");
    let fa = b.state("fa");
    let fd = b.state("fd");
    let r = b.state("r");
    let ra = b.state("ra");
    let rd = b.state("rd");
    let rp = b.state("r'");
    b.output_states(&[r, ra, rd]);
    let (off, on) = (Link::Off, Link::On);

    // Matching every u ∈ V1 to a distinct v ∈ V2.
    b.rule((q0, r0, off), (l, r, on));
    // Leader election in V1.
    for x in [off, on] {
        b.rule((l, l, x), (l, f, x));
    }
    // Leader at a non-edge / edge of G1: copy with prob. 1/2, walk else.
    b.rule_random((l, f, off), [(1, (ld, fd, off)), (1, (f, l, off))]);
    b.rule_random((l, f, on), [(1, (la, fa, on)), (1, (f, l, on))]);
    // Informing the matched nodes from V2 to apply the copying.
    for (x, xi, ri) in [(l, la, ra), (l, ld, rd), (f, fa, ra), (f, fd, rd)] {
        let _ = x;
        b.rule((xi, r, on), (xi, ri, on));
    }
    // Applying the copying in G2.
    for x in [off, on] {
        b.rule((ra, ra, x), (rp, rp, on));
        b.rule((rd, rd, x), (rp, rp, off));
    }
    // Acknowledging: the matched V1 node unmarks.
    for (xi, x) in [(la, l), (ld, l), (fa, f), (fd, f)] {
        b.rule((rp, xi, on), (r, x, on));
    }
    // Leader election also applies to marked leaders (prevents blocking).
    for (li, x) in [(la, off), (la, on), (ld, off), (ld, on)] {
        let _ = x;
        b.rule((li, l, x), (li, f, x));
    }
    for x in [off, on] {
        b.rule((la, la, x), (la, fa, x));
        b.rule((ld, ld, x), (ld, fd, x));
        b.rule((la, ld, x), (la, fd, x));
    }
    b.build().expect("Protocol 9 is well-formed")
}

/// Builds the initial configuration: `g1` on nodes `0..g1.n()` (states
/// `q0`, edges of `g1` active) and `n2` fresh nodes in `r0`.
///
/// # Panics
///
/// Panics if `n2 < g1.n()` (the replica needs at least `|V₁|` nodes).
#[must_use]
pub fn initial_population(g1: &EdgeSet, n2: usize) -> Population<StateId> {
    let n1 = g1.n();
    assert!(n2 >= n1, "replication requires |V2| >= |V1|");
    let mut states = vec![Q0; n1];
    states.extend(std::iter::repeat_n(R0, n2));
    let mut edges = EdgeSet::new(n1 + n2);
    for (u, v) in g1.active_edges() {
        edges.activate(u, v);
    }
    Population::from_parts(states, edges)
}

const V1_STATES: [StateId; 7] = [Q0, L, LA, LD, F, FA, FD];

/// Whether `s` is a `V₁`-side state.
#[must_use]
pub fn is_v1_state(s: StateId) -> bool {
    V1_STATES.contains(&s)
}

/// The matching from `V₁` nodes to their `V₂` partners: `matching[u]` is
/// the unique matched `V₂` node of `V₁` node `u`.
///
/// Returns `None` while any `V₁` node is still unmatched.
#[must_use]
pub fn matching(pop: &Population<StateId>) -> Option<Vec<(usize, usize)>> {
    let mut pairs = Vec::new();
    for u in 0..pop.n() {
        let s = *pop.state(u);
        if s == Q0 {
            return None;
        }
        if !is_v1_state(s) {
            continue;
        }
        let mut partner = None;
        for v in pop.edges().neighbors(u) {
            if !is_v1_state(*pop.state(v)) {
                if partner.is_some() {
                    return None; // mid-interaction anomaly; not matched yet
                }
                partner = Some(v);
            }
        }
        pairs.push((u, partner?));
    }
    Some(pairs)
}

/// The replica: the active subgraph induced by the matched `V₂` nodes,
/// relabelled to `0..|V₂ matched|`.
///
/// Note a subtlety in the paper: `Q_out = {r, ra, rd}` excludes the
/// transient acknowledgement state `r'`, but after stabilization the
/// unique leader keeps re-copying edges forever, so matched `V₂` nodes
/// keep passing through `r'` — under a strictly literal reading the
/// output *node set* would fluctuate forever even though the replica's
/// edge set is stable. We therefore treat all matched `V₂` states
/// (`r, ra, rd, r'`) as the replica's nodes; unmatched spares (`r0`)
/// remain excluded.
#[must_use]
pub fn replica(pop: &Population<StateId>) -> EdgeSet {
    let v2: Vec<usize> = pop.nodes_where(|s| matches!(*s, R | RA | RD | RP));
    pop.edges().induced(&v2)
}

/// Certifies output stability: every `V₁` node matched, a unique leader,
/// no marks in flight anywhere, and the `V₂` graph equal to `G₁` under
/// the matching.
///
/// From such a configuration every future copy rewrites an edge to the
/// value it already has, so the output never changes (Theorem 13).
#[must_use]
pub fn is_stable(pop: &Population<StateId>) -> bool {
    let leaders = pop.count_where(|s| matches!(*s, L | LA | LD));
    if leaders != 1 {
        return false;
    }
    if pop.count_where(|s| matches!(*s, Q0 | LA | LD | FA | FD | RA | RD | RP)) != 0 {
        return false;
    }
    let Some(pairs) = matching(pop) else {
        return false;
    };
    for (i, &(u, mu)) in pairs.iter().enumerate() {
        for &(v, mv) in &pairs[i + 1..] {
            if pop.edges().is_active(u, v) != pop.edges().is_active(mu, mv) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes_sim;
    use netcon_core::{Machine, Simulation};
    use netcon_graph::iso::are_isomorphic;

    #[test]
    fn paper_metadata() {
        let p = protocol();
        assert_eq!(p.size(), 12, "Table 2: Graph-Replication uses 12 states");
        assert!(p.is_output(&R) && p.is_output(&RA) && p.is_output(&RD));
        assert!(!p.is_output(&RP) && !p.is_output(&L) && !p.is_output(&Q0));
    }

    fn replicate(g1: &EdgeSet, n2: usize, seed: u64) -> Population<StateId> {
        let pop = initial_population(g1, n2);
        let sim = Simulation::from_population(protocol(), pop, seed);
        let sim = assert_stabilizes_sim(sim, is_stable, 4_000_000_000, 100_000);
        sim.population().clone()
    }

    #[test]
    fn replicates_a_path() {
        let g1 = EdgeSet::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let pop = replicate(&g1, 4, 3);
        assert!(are_isomorphic(&replica(&pop), &g1));
    }

    #[test]
    fn replicates_a_triangle_with_spare_nodes() {
        let g1 = EdgeSet::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let pop = replicate(&g1, 5, 1);
        // The two spare V2 nodes stay in r0 and are not part of the output.
        assert_eq!(pop.count_where(|s| *s == R0), 2);
        assert!(are_isomorphic(&replica(&pop), &g1));
    }

    #[test]
    fn replicates_a_star() {
        let g1 = EdgeSet::from_edges(5, (1..5).map(|v| (0, v)));
        let pop = replicate(&g1, 5, 7);
        assert!(are_isomorphic(&replica(&pop), &g1));
    }

    #[test]
    fn v1_edges_are_never_modified() {
        let g1 = EdgeSet::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pop0 = initial_population(&g1, 4);
        let mut sim = Simulation::from_population(protocol(), pop0, 9);
        for _ in 0..100 {
            sim.run_for(500);
            let pop = sim.population();
            for u in 0..4 {
                for v in (u + 1)..4 {
                    assert_eq!(
                        pop.edges().is_active(u, v),
                        g1.is_active(u, v),
                        "E1 must be invariant"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "|V2| >= |V1|")]
    fn too_few_replica_nodes_rejected() {
        let g1 = EdgeSet::from_edges(3, [(0, 1)]);
        let _ = initial_population(&g1, 2);
    }
}
