//! Every network-construction protocol from Michail & Spirakis (PODC 2014).
//!
//! Each module transcribes one protocol listing from the paper, exposes
//!
//! * `protocol()` — the [`RuleProtocol`](netcon_core::RuleProtocol)
//!   (`protocol(k)` / `protocol(c)` for the parameterized families),
//! * `is_stable(&Population)` — a predicate, derived from the paper's
//!   correctness proof, that certifies the configuration is output-stable
//!   (the active graph can never change again), and
//! * helpers specific to the construction (censuses, custom initial
//!   configurations, replica extraction).
//!
//! | Module | Paper | States | Expected time (uniform scheduler) |
//! |--------|-------|--------|-----------------------------------|
//! | [`simple_global_line`] | Protocol 1, Thm 3 | 5 | Ω(n⁴), O(n⁵) |
//! | [`fast_global_line`] | Protocol 2, Thm 4 | 9 | O(n³) |
//! | [`faster_global_line`] | Protocol 10, §7 | 6 | open (conjectured < Fast) |
//! | [`cycle_cover`] | Protocol 3, Thm 5 | 3 | Θ(n²), optimal |
//! | [`global_star`] | Protocol 4, Thms 6–7 | 2 | Θ(n² log n), optimal |
//! | [`global_ring`] | Protocol 5, Thms 8–9 | 10 | — (Ω(n²) lower bound) |
//! | [`krc`] | Protocols 6–7, Thms 10–11 | 2(k+1) | — (Ω(n log n) lower bound) |
//! | [`c_cliques`] | Protocol 8, Thm 12 | 5c−3 | — (Ω(n log n) lower bound) |
//! | [`replication`] | Protocol 9, Thm 13 | 12 | Θ(n⁴ log n) |
//! | [`spanning_net`] | Thm 1 | 2 | Θ(n log n), optimal for spanning |
//! | [`doubling`] | §5 (degree ≠ size) | 2d+3 | — |
//!
//! Two *fault-tolerant* constructors from the follow-up paper "Fault
//! Tolerant Network Constructors" (arXiv 1903.05992) extend the table:
//! they use the crash-notification model (a node that loses an active
//! edge to a crashed neighbour has the protocol's notify map applied)
//! and re-stabilize after crash bursts the baselines provably never
//! repair.
//!
//! | Module | Technique | States | Repairs |
//! |--------|-----------|--------|---------|
//! | [`ft_star`] | notified re-election | 2 | any crash pattern, incl. the centre |
//! | [`ft_line`] | restart/waste wave | 6 | any crash pattern, by fragment dissolution |
//!
//! # Example
//!
//! ```
//! use netcon_core::Simulation;
//! use netcon_protocols::cycle_cover;
//!
//! let mut sim = Simulation::new(cycle_cover::protocol(), 30, 11);
//! let outcome = sim.run_until(cycle_cover::is_stable, 1_000_000);
//! assert!(outcome.stabilized());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod c_cliques;
pub mod catalog;
pub mod cycle_cover;
pub mod doubling;
pub mod fast_global_line;
pub mod faster_global_line;
pub mod ft_line;
pub mod ft_star;
pub mod global_ring;
pub mod global_star;
pub mod krc;
pub mod leader_line;
pub mod replication;
pub mod simple_global_line;
pub mod spanning_net;
