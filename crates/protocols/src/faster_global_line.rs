//! Protocol 10: **Faster-Global-Line** — the conjectured improvement from
//! the paper's conclusions (§7, 6 states; open whether it asymptotically
//! beats Fast-Global-Line).
//!
//! When two leaders duel, the loser becomes a *dissolving follower* `f`
//! that releases its own line node by node; released nodes (state `q`)
//! are free for awake leaders to absorb. In contrast to Protocol 2, the
//! sleeping lines dismantle themselves in parallel with the winner's
//! growth.
//!
//! ```text
//! Q = {q0, q1, q2, q, l, f}
//! (q0, q0, 0) → (q1, l, 1)    // two isolated nodes start a line
//! (l,  q0, 0) → (q2, l, 1)    // expand towards a fresh node
//! (l,  q,  0) → (q2, l, 1)    // expand towards a released node
//! (l,  l,  0) → (l,  f, 0)    // duel: loser starts dissolving
//! (f,  q2, 1) → (q,  f, 0)    // release the endpoint, pass f inwards
//! (f,  q1, 1) → (q,  q, 0)    // last edge of the losing line dissolves
//! ```

use netcon_core::{Link, Population, ProtocolBuilder, RuleProtocol, StateId};
use netcon_graph::properties::is_spanning_line;

/// `q0` — initial, isolated.
pub const Q0: StateId = StateId::new(0);
/// `q1` — non-leader endpoint.
pub const Q1: StateId = StateId::new(1);
/// `q2` — internal line node.
pub const Q2: StateId = StateId::new(2);
/// `q` — released (free) node.
pub const Q: StateId = StateId::new(3);
/// `l` — leader endpoint of an awake line.
pub const L: StateId = StateId::new(4);
/// `f` — dissolving-follower mark travelling down a losing line.
pub const F: StateId = StateId::new(5);

/// Builds Protocol 10.
#[must_use]
pub fn protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("Faster-Global-Line");
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let q2 = b.state("q2");
    let q = b.state("q");
    let l = b.state("l");
    let f = b.state("f");
    b.rule((q0, q0, Link::Off), (q1, l, Link::On));
    b.rule((l, q0, Link::Off), (q2, l, Link::On));
    b.rule((l, q, Link::Off), (q2, l, Link::On));
    b.rule((l, l, Link::Off), (l, f, Link::Off));
    b.rule((f, q2, Link::On), (q, f, Link::Off));
    b.rule((f, q1, Link::On), (q, q, Link::Off));
    b.build().expect("Protocol 10 is well-formed")
}

/// Certifies output stability: spanning line with a unique leader and no
/// dissolving lines or free nodes left.
#[must_use]
pub fn is_stable(pop: &Population<StateId>) -> bool {
    let mut leaders = 0usize;
    for s in pop.states() {
        match *s {
            Q1 | Q2 => {}
            L => leaders += 1,
            _ => return false,
        }
    }
    leaders == 1 && is_spanning_line(pop.edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes;

    #[test]
    fn paper_metadata() {
        let p = protocol();
        assert_eq!(p.size(), 6);
        assert_eq!(p.rules().len(), 6);
        for (name, id) in [("q0", Q0), ("q1", Q1), ("q2", Q2), ("q", Q), ("l", L), ("f", F)] {
            assert_eq!(p.state(name), Some(id));
        }
    }

    #[test]
    fn constructs_spanning_line() {
        for n in [2, 3, 4, 5, 8, 16, 24] {
            for seed in 0..3 {
                let sim = assert_stabilizes(protocol(), n, seed, is_stable, 80_000_000, 40_000);
                assert!(is_spanning_line(sim.population().edges()));
                assert!(sim.is_quiescent());
            }
        }
    }

    #[test]
    fn duel_dissolves_loser() {
        use netcon_core::Simulation;
        // Two 2-lines plus nothing else: after the duel one line dissolves
        // and the winner absorbs both released nodes.
        let mut pop = Population::new(4, Q0);
        pop.set_state(0, Q1);
        pop.set_state(1, L);
        pop.set_state(2, L);
        pop.set_state(3, Q1);
        pop.edges_mut().activate(0, 1);
        pop.edges_mut().activate(2, 3);
        let mut sim = Simulation::from_population(protocol(), pop, 2);
        let out = sim.run_until(is_stable, 5_000_000);
        assert!(out.stabilized());
        assert!(is_spanning_line(sim.population().edges()));
    }
}
