//! Protocol 8: **c-Cliques** — partitions the population into `⌊n/c⌋`
//! cliques of order `c` (5c−3 states; Theorem 12).
//!
//! A leader grows a component by attracting isolated nodes (or capturing
//! other incomplete leaders, whose own followers are released — the
//! "nondeterministic elimination" that avoids deadlock). When a component
//! reaches `c` nodes the leader numbers its `c − 1` followers, the
//! followers connect pairwise (counting their connections), and the leader
//! then patrols forever: it swaps into a follower's position (`l'_i`) and
//! any two patrolling leaders that meet over an *active* edge have found a
//! wrong (cross-component) connection, which they deactivate.
//!
//! ```text
//! Q = {l0..l_{c−2}, f1..f_{c−2}, f, l̄0..l̄_{c−2}, l, 1..c−1, l'1..l'_{c−1}, r}
//! (li, l0, 0)   → (li+1, f, 1)          0 ≤ i < c−2
//! (l_{c−2}, l0, 0) → (l̄1, 1, 1)
//! (li, lj, 0)   → (li+1, fj, 1)         1 ≤ j ≤ i < c−2
//! (l_{c−2}, lj, 0) → (l̄0, fj, 1)       1 ≤ j ≤ c−2
//! (fi, f, 1)    → (fi−1, l0, 0)         i > 1
//! (f1, f, 1)    → (f, l0, 0)
//! (l̄i, f, 1)   → (l̄i+1, 1, 1)         i < c−2
//! (l̄_{c−2}, f, 1) → (l, 1, 1)
//! (i, j, 0)     → (i+1, j+1, 1)         i < c−1, j < c−1
//! (l, i, 1)     → (r, l'i, 1)
//! (l'i, l'j, 1) → (l'i−1, l'j−1, 0)     2 ≤ i, j ≤ c−1
//! (l'i, r, 1)   → (i, l, 1)
//! ```

use netcon_core::{Link, Population, ProtocolBuilder, RuleProtocol, StateId};
use netcon_graph::properties::is_clique_partition;

/// State handles for a `c-Cliques` instance.
///
/// Layout (ids in declaration order): `l0..l_{c−2}`, `f1..f_{c−2}`, `f`,
/// `l̄0..l̄_{c−2}`, `l`, numbered followers `1..c−1`, primed followers
/// `l'1..l'_{c−1}`, `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct States {
    /// The clique order `c`.
    pub c: u16,
}

impl States {
    /// Incomplete-component leader `l_i` (`0 ≤ i ≤ c−2`).
    #[must_use]
    pub fn leader(self, i: u16) -> StateId {
        assert!(i <= self.c - 2);
        StateId::new(i)
    }

    /// Captured leader `f_i` still holding `i` followers (`1 ≤ i ≤ c−2`).
    #[must_use]
    pub fn captured(self, i: u16) -> StateId {
        assert!((1..=self.c - 2).contains(&i));
        StateId::new(self.c - 1 + (i - 1))
    }

    /// Plain follower `f` (attached, unnumbered).
    #[must_use]
    pub fn follower(self) -> StateId {
        StateId::new(2 * self.c - 3)
    }

    /// Numbering leader `l̄_i` (`0 ≤ i ≤ c−2`).
    #[must_use]
    pub fn numbering(self, i: u16) -> StateId {
        assert!(i <= self.c - 2);
        StateId::new(2 * self.c - 2 + i)
    }

    /// Patrolling leader `l` of a complete component.
    #[must_use]
    pub fn patrol(self) -> StateId {
        StateId::new(3 * self.c - 3)
    }

    /// Numbered follower with `i` active connections (`1 ≤ i ≤ c−1`).
    #[must_use]
    pub fn numbered(self, i: u16) -> StateId {
        assert!((1..=self.c - 1).contains(&i));
        StateId::new(3 * self.c - 2 + (i - 1))
    }

    /// Checking leader `l'_i` occupying a follower of count `i`.
    #[must_use]
    pub fn checking(self, i: u16) -> StateId {
        assert!((1..=self.c - 1).contains(&i));
        StateId::new(4 * self.c - 3 + (i - 1))
    }

    /// Place-holder `r` left at the patrol leader's home position.
    #[must_use]
    pub fn rest(self) -> StateId {
        StateId::new(5 * self.c - 4)
    }

    /// Whether `s` is a captured leader (`f_i`) — a transient state whose
    /// presence means releases (edge deactivations) are still pending.
    #[must_use]
    pub fn is_captured(self, s: StateId) -> bool {
        (self.c - 1..2 * self.c - 3).contains(&(s.index() as u16))
    }
}

/// Builds Protocol 8 for clique order `c ≥ 3`.
///
/// (For `c = 2` the problem is maximum matching, solved by the 2-state
/// matching process of §3.3; this protocol's state layout needs `c ≥ 3`.)
///
/// # Panics
///
/// Panics if `c < 3`.
#[must_use]
pub fn protocol(c: u16) -> RuleProtocol {
    assert!(c >= 3, "c-Cliques requires c >= 3; use a matching for c = 2");
    let mut b = ProtocolBuilder::new(format!("{c}-Cliques"));
    let st = States { c };
    // Declare all states in layout order so the handles above are valid.
    for i in 0..=c - 2 {
        b.state(format!("l{i}"));
    }
    for i in 1..=c - 2 {
        b.state(format!("f{i}"));
    }
    b.state("f");
    for i in 0..=c - 2 {
        b.state(format!("lbar{i}"));
    }
    b.state("l");
    for i in 1..=c - 1 {
        b.state(format!("n{i}"));
    }
    for i in 1..=c - 1 {
        b.state(format!("l'{i}"));
    }
    b.state("r");
    let (off, on) = (Link::Off, Link::On);

    // Growth by attracting isolated nodes.
    for i in 0..c - 2 {
        b.rule((st.leader(i), st.leader(0), off), (st.leader(i + 1), st.follower(), on));
    }
    b.rule(
        (st.leader(c - 2), st.leader(0), off),
        (st.numbering(1), st.numbered(1), on),
    );
    // Nondeterministic elimination of incomplete components.
    for j in 1..=c - 2 {
        for i in j..c - 2 {
            b.rule((st.leader(i), st.leader(j), off), (st.leader(i + 1), st.captured(j), on));
        }
        b.rule(
            (st.leader(c - 2), st.leader(j), off),
            (st.numbering(0), st.captured(j), on),
        );
    }
    // A captured leader releases its followers one by one.
    for i in 2..=c - 2 {
        b.rule((st.captured(i), st.follower(), on), (st.captured(i - 1), st.leader(0), off));
    }
    b.rule((st.captured(1), st.follower(), on), (st.follower(), st.leader(0), off));
    // The leader of a complete component numbers its followers.
    for i in 0..c - 2 {
        b.rule((st.numbering(i), st.follower(), on), (st.numbering(i + 1), st.numbered(1), on));
    }
    b.rule((st.numbering(c - 2), st.follower(), on), (st.patrol(), st.numbered(1), on));
    // Followers connect, keeping count of their connections.
    for i in 1..c - 1 {
        for j in 1..c - 1 {
            b.rule((st.numbered(i), st.numbered(j), off), (st.numbered(i + 1), st.numbered(j + 1), on));
        }
    }
    // The leader patrols: swap into a follower's position…
    for i in 1..=c - 1 {
        b.rule((st.patrol(), st.numbered(i), on), (st.rest(), st.checking(i), on));
    }
    // …two patrolling leaders on an active edge found a wrong connection…
    for i in 2..=c - 1 {
        for j in 2..=c - 1 {
            b.rule((st.checking(i), st.checking(j), on), (st.checking(i - 1), st.checking(j - 1), off));
        }
    }
    // …and the leader returns home nondeterministically.
    for i in 1..=c - 1 {
        b.rule((st.checking(i), st.rest(), on), (st.numbered(i), st.patrol(), on));
    }
    b.build().expect("Protocol 8 is well-formed")
}

/// Certifies output stability: the active graph is a `c`-clique partition
/// and no captured leader (`f_i`) remains, so no release (edge
/// deactivation) is pending in the residue.
#[must_use]
pub fn is_stable(pop: &Population<StateId>, c: u16) -> bool {
    let st = States { c };
    pop.count_where(|s| st.is_captured(*s)) == 0 && is_clique_partition(pop.edges(), c as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes;
    use netcon_core::{Machine, Simulation};

    #[test]
    fn paper_metadata() {
        for c in 3..=6 {
            let p = protocol(c);
            assert_eq!(
                p.size(),
                usize::from(5 * c - 3),
                "Table 2: c-Cliques uses 5c−3 states (c={c})"
            );
        }
    }

    #[test]
    fn state_layout_matches_names() {
        let c = 4;
        let p = protocol(c);
        let st = States { c };
        assert_eq!(p.state("l0"), Some(st.leader(0)));
        assert_eq!(p.state("f1"), Some(st.captured(1)));
        assert_eq!(p.state("f"), Some(st.follower()));
        assert_eq!(p.state("lbar0"), Some(st.numbering(0)));
        assert_eq!(p.state("l"), Some(st.patrol()));
        assert_eq!(p.state("n1"), Some(st.numbered(1)));
        assert_eq!(p.state("l'1"), Some(st.checking(1)));
        assert_eq!(p.state("r"), Some(st.rest()));
        assert_eq!(p.initial_state(), st.leader(0), "q0 = l0");
    }

    #[test]
    fn partitions_into_triangles() {
        for n in [6, 9, 12] {
            for seed in 0..3 {
                let sim = assert_stabilizes(
                    protocol(3),
                    n,
                    seed,
                    |p| is_stable(p, 3),
                    2_000_000_000,
                    60_000,
                );
                assert!(is_clique_partition(sim.population().edges(), 3));
            }
        }
    }

    #[test]
    fn partitions_with_leftover() {
        // n = 3·2 + 2 leaves a residue of 2 nodes.
        let sim = assert_stabilizes(protocol(3), 8, 1, |p| is_stable(p, 3), 2_000_000_000, 60_000);
        assert!(is_clique_partition(sim.population().edges(), 3));
    }

    #[test]
    fn partitions_into_k4() {
        let sim = assert_stabilizes(protocol(4), 8, 5, |p| is_stable(p, 4), 4_000_000_000, 60_000);
        assert!(is_clique_partition(sim.population().edges(), 4));
    }

    #[test]
    fn numbered_follower_count_matches_degree() {
        let st = States { c: 3 };
        let mut sim = Simulation::new(protocol(3), 9, 2);
        for _ in 0..200 {
            sim.run_for(200);
            let pop = sim.population();
            for u in 0..pop.n() {
                let s = *pop.state(u);
                for i in 1..=2u16 {
                    if s == st.numbered(i) {
                        assert_eq!(
                            pop.edges().degree(u),
                            u32::from(i),
                            "numbered follower count must equal degree (node {u})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "c >= 3")]
    fn c_two_rejected() {
        let _ = protocol(2);
    }
}
