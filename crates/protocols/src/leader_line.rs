//! The §7 reference point: spanning-line construction **with a
//! pre-elected leader**.
//!
//! The conclusions observe that, given a unique pre-elected leader `l`
//! and all edges inactive, the single rule
//!
//! ```text
//! (l, q0, 0) → (q1, l, 1)
//! ```
//!
//! produces a stable spanning line in Θ(n² log n) expected time (a *meet
//! everybody* process: the moving leader must bump into every remaining
//! `q0`). This is almost optimal — the general lower bound for lines is
//! Ω(n²) — and the gap to the leaderless constructors (Ω(n⁴)/O(n⁵) for
//! Protocol 1, O(n³) for Protocol 2) quantifies the price of electing
//! the leader *while* building: the composition problem the paper leaves
//! open.
//!
//! The protocol cannot run from the model's uniform initial configuration
//! (it needs the leader pre-placed), so it comes with its own
//! [`initial_population`].

use netcon_core::{Link, Population, ProtocolBuilder, RuleProtocol, StateId};

/// `q0` — unrecruited node.
pub const Q0: StateId = StateId::new(0);
/// `q1` — line node (everyone the leader has passed through).
pub const Q1: StateId = StateId::new(1);
/// `l` — the unique pre-elected leader, always at the line's growing end.
pub const L: StateId = StateId::new(2);

/// Builds the pre-elected-leader line protocol.
#[must_use]
pub fn protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("Leader-Line");
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let l = b.state("l");
    b.rule((l, q0, Link::Off), (q1, l, Link::On));
    b.build().expect("the leader-line rule is well-formed")
}

/// The initial configuration: node 0 is the leader, everyone else `q0`.
#[must_use]
pub fn initial_population(n: usize) -> Population<StateId> {
    let mut pop = Population::new(n, Q0);
    pop.set_state(0, L);
    pop
}

/// Certifies output stability: no `q0` remains (the only rule needs one).
#[must_use]
pub fn is_stable(pop: &Population<StateId>) -> bool {
    pop.count_where(|s| *s == Q0) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes_sim;
    use netcon_core::Simulation;
    use netcon_graph::properties::is_spanning_line;

    #[test]
    fn builds_a_spanning_line() {
        for n in [2, 5, 16, 64] {
            for seed in 0..3 {
                let sim = Simulation::from_population(protocol(), initial_population(n), seed);
                let sim = assert_stabilizes_sim(sim, is_stable, u64::MAX, 20_000);
                assert!(is_spanning_line(sim.population().edges()));
                assert!(sim.is_quiescent());
            }
        }
    }

    #[test]
    fn leader_ends_at_an_endpoint() {
        let sim = Simulation::from_population(protocol(), initial_population(12), 9);
        let sim = assert_stabilizes_sim(sim, is_stable, u64::MAX, 5_000);
        let pop = sim.population();
        let leaders = pop.nodes_where(|s| *s == L);
        assert_eq!(leaders.len(), 1);
        assert_eq!(pop.edges().degree(leaders[0]), 1, "leader is an endpoint");
    }

    #[test]
    fn much_faster_than_leaderless_constructors() {
        // At n = 32 the Θ(n² log n) leader-line beats Protocol 1's Ω(n⁴)
        // comfortably on aggregate.
        let n = 32;
        let trials = 5;
        let leader: u64 = (0..trials)
            .map(|seed| {
                let mut sim =
                    Simulation::from_population(protocol(), initial_population(n), seed);
                sim.run_until(is_stable, u64::MAX)
                    .converged_at()
                    .expect("stabilizes")
            })
            .sum();
        let simple: u64 = (0..trials)
            .map(|seed| {
                let mut sim = Simulation::new(
                    crate::simple_global_line::protocol(),
                    n,
                    seed,
                );
                sim.run_until(crate::simple_global_line::is_stable, u64::MAX)
                    .converged_at()
                    .expect("stabilizes")
            })
            .sum();
        assert!(
            leader * 2 < simple,
            "pre-elected leader ({leader}) should be at least 2x faster than \
             Simple-Global-Line ({simple}) at n={n}"
        );
    }
}
