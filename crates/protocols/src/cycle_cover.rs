//! Protocol 3: **Cycle-Cover** — partitions the population into disjoint
//! cycles with waste at most 2 (3 states, Θ(n²) expected time — optimal;
//! Theorem 5).
//!
//! The state of a node records its active degree, and any two nodes of
//! degree < 2 connect when they meet:
//!
//! ```text
//! Q = {q0, q1, q2}
//! (q0, q0, 0) → (q1, q1, 1)
//! (q1, q0, 0) → (q2, q1, 1)
//! (q1, q1, 0) → (q2, q2, 1)
//! ```
//!
//! The stable residue ("waste") is at most one isolated node or one
//! matched pair, never both — see [`is_stable`].

use netcon_core::{
    EngineView, EnumerableMachine, Link, Population, ProtocolBuilder, RuleProtocol, SparsePop,
    StateId,
};
use netcon_graph::properties::is_cycle_cover_with_waste;

/// `q0` — degree 0.
pub const Q0: StateId = StateId::new(0);
/// `q1` — degree 1.
pub const Q1: StateId = StateId::new(1);
/// `q2` — degree 2 (saturated).
pub const Q2: StateId = StateId::new(2);

/// Builds Protocol 3.
#[must_use]
pub fn protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("Cycle-Cover");
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let q2 = b.state("q2");
    b.rule((q0, q0, Link::Off), (q1, q1, Link::On));
    b.rule((q1, q0, Link::Off), (q2, q1, Link::On));
    b.rule((q1, q1, Link::Off), (q2, q2, Link::On));
    b.build().expect("Protocol 3 is well-formed")
}

/// Certifies output stability: every node has degree 2 except a residue
/// that no rule can touch — either nothing, one isolated `q0`, or one
/// adjacent `q1`–`q1` pair.
///
/// (Two non-adjacent low-degree nodes would still have an applicable
/// activation rule, so the configuration would not be stable.)
#[must_use]
pub fn is_stable(pop: &Population<StateId>) -> bool {
    let q0s = pop.nodes_where(|s| *s == Q0);
    let q1s = pop.nodes_where(|s| *s == Q1);
    let residue_ok = match (q0s.len(), q1s.len()) {
        (0, 0) => true,
        (1, 0) => true,
        (0, 2) => pop.edges().is_active(q1s[0], q1s[1]),
        _ => false,
    };
    residue_ok && is_cycle_cover_with_waste(pop.edges(), 2)
}

/// [`is_stable`] for the sparse engine, in O(1): the protocol's state
/// encodes the node's active degree exactly (the
/// `state_tracks_degree_invariant` test), so when the residue condition
/// holds every remaining node is `q2` with degree 2 — the active graph
/// decomposes into disjoint cycles with the residue as waste ≤ 2. Fires
/// at exactly the same step as the dense predicate.
#[must_use]
pub fn is_stable_sparse(sp: &SparsePop) -> bool {
    match (sp.count_index(Q0.index()), sp.count_index(Q1.index())) {
        (0, 0) | (1, 0) => true,
        (0, 2) => {
            let q1 = sp.nodes_index(Q1.index());
            sp.is_active(q1[0] as usize, q1[1] as usize)
        }
        _ => false,
    }
}

/// [`is_stable_sparse`] over an engine-selection view
/// ([`Engine`](netcon_core::Engine)-driven sweeps); the state-count
/// queries are O(1) on the sparse arm and O(n) scans on the dense one.
#[must_use]
pub fn is_stable_view<M: EnumerableMachine>(v: &EngineView<'_, M>) -> bool {
    match (v.count_index(Q0.index()), v.count_index(Q1.index())) {
        (0, 0) | (1, 0) => true,
        (0, 2) => {
            let q1 = v.nodes_index(Q1.index());
            v.is_active(q1[0], q1[1])
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::{assert_stabilizes, assert_stabilizes_event};
    use netcon_core::Simulation;

    #[test]
    fn paper_metadata() {
        let p = protocol();
        assert_eq!(p.size(), 3, "Table 2: Cycle-Cover uses 3 states");
        assert_eq!(p.rules().len(), 3);
    }

    #[test]
    fn deleted_cycle_edges_are_not_repaired() {
        use netcon_core::{Engine, FaultEvent, FaultPlan};
        // Cycle-Cover is a one-way protocol: `q2` appears in no rule's
        // left side, so once every node is saturated no damage to the
        // output graph can ever be repaired. Run a seed whose final
        // configuration is all-`q2` (a perfect cycle cover, hence
        // quiescent), delete a random active edge, and document that
        // nothing re-fires — the honest non-repair result.
        let n = 8;
        let seed = (0..50)
            .find(|&s| {
                let mut e = Engine::auto(protocol().compile(), n, s);
                e.run_until(is_stable_view, 1_000_000_000)
                    .converged_at()
                    .expect("Cycle-Cover stabilizes");
                e.to_population().count_where(|st| *st == Q2) == n
            })
            .expect("some seed leaves no residue");
        let plan = FaultPlan::new(13).at(u64::MAX, FaultEvent::DeleteRandomActiveEdges(1));
        let mut eng = Engine::auto_faulted(protocol().compile(), n, seed, plan);
        eng.run_until(|v| v.count_index(2) == v.n(), 1_000_000_000)
            .converged_at()
            .expect("the replayed seed saturates every node to q2");
        eng.apply_faults_now();
        assert_eq!(eng.to_population().edges().active_count(), n - 1);
        let eff = eng.effective_steps();
        eng.run_faulted_to(eng.steps() + 2_000_000);
        assert_eq!(eng.effective_steps(), eff, "no Cycle-Cover rule mentions q2");
    }

    #[test]
    fn covers_with_waste_at_most_two() {
        for n in [3, 4, 5, 6, 9] {
            for seed in 0..3 {
                let sim = assert_stabilizes(protocol(), n, seed, is_stable, 50_000_000, 30_000);
                assert!(is_cycle_cover_with_waste(sim.population().edges(), 2));
                assert!(sim.is_quiescent(), "stable cycle cover quiesces");
            }
        }
        // Larger populations on the event-driven engine (identical output
        // distribution, cost proportional to the ~n effective steps).
        for n in [16, 33, 50, 200] {
            for seed in 0..3 {
                let sim = assert_stabilizes_event(
                    protocol().compile(),
                    n,
                    seed,
                    is_stable,
                    50_000_000_000,
                    30_000,
                );
                assert!(is_cycle_cover_with_waste(sim.population().edges(), 2));
                assert!(sim.is_quiescent(), "stable cycle cover quiesces");
            }
        }
    }

    #[test]
    fn state_tracks_degree_invariant() {
        let mut sim = Simulation::new(protocol(), 24, 8);
        for _ in 0..100 {
            sim.run_for(100);
            let pop = sim.population();
            for u in 0..pop.n() {
                let d = pop.edges().degree(u);
                let expect = match d {
                    0 => Q0,
                    1 => Q1,
                    2 => Q2,
                    _ => panic!("degree {d} impossible under Cycle-Cover"),
                };
                assert_eq!(*pop.state(u), expect, "state of node {u} must encode degree");
            }
        }
    }

    #[test]
    fn residue_pair_is_adjacent() {
        // Run many small cases and inspect residues explicitly.
        for seed in 0..10 {
            let sim = assert_stabilizes(protocol(), 8, seed, is_stable, 10_000_000, 10_000);
            let pop = sim.population();
            let q1s = pop.nodes_where(|s| *s == Q1);
            if q1s.len() == 2 {
                assert!(pop.edges().is_active(q1s[0], q1s[1]));
            }
        }
    }
}
