//! Protocol 4: **Global-Star** — the spanning-star constructor from the
//! paper's introduction (2 states, Θ(n² log n) expected time; optimal in
//! both size and time, Theorems 6–7).
//!
//! ```text
//! Q = {c, p},  q0 = c
//! (c, c, 0) → (c, p, 1)   // centres duel; loser becomes peripheral
//! (p, p, 1) → (p, p, 0)   // peripherals repel
//! (c, p, 0) → (c, p, 1)   // centre attracts peripherals
//! ```

use netcon_core::{Link, Population, ProtocolBuilder, RuleProtocol, StateId};
use netcon_graph::properties::is_spanning_star;

/// `c` — centre (the initial state of every node).
pub const C: StateId = StateId::new(0);
/// `p` — peripheral.
pub const P: StateId = StateId::new(1);

/// Builds Protocol 4.
#[must_use]
pub fn protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("Global-Star");
    let c = b.state("c");
    let p = b.state("p");
    b.rule((c, c, Link::Off), (c, p, Link::On));
    b.rule((p, p, Link::On), (p, p, Link::Off));
    b.rule((c, p, Link::Off), (c, p, Link::On));
    b.build().expect("Protocol 4 is well-formed")
}

/// Certifies output stability: a unique centre `c` of full degree, every
/// peripheral of degree 1 (so no `(c,p,0)` or `(p,p,1)` rule applies, and
/// `(c,c,0)` is impossible with one centre).
#[must_use]
pub fn is_stable(pop: &Population<StateId>) -> bool {
    let centers = pop.nodes_where(|s| *s == C);
    centers.len() == 1
        && is_spanning_star(pop.edges())
        && pop.edges().degree(centers[0]) as usize == pop.n() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes;
    use netcon_core::{RoundRobin, ShuffledRounds, Simulation};

    #[test]
    fn paper_metadata() {
        let p = protocol();
        assert_eq!(p.size(), 2, "Theorem 6: 2 states are necessary; 2 suffice");
        assert_eq!(p.rules().len(), 3);
    }

    #[test]
    fn constructs_spanning_star() {
        for n in [2, 3, 4, 8, 16, 32, 64] {
            let sim = assert_stabilizes(protocol(), n, 1, is_stable, 100_000_000, 50_000);
            assert!(is_spanning_star(sim.population().edges()));
            assert!(sim.is_quiescent());
        }
    }

    #[test]
    fn centre_count_never_increases() {
        let mut sim = Simulation::new(protocol(), 32, 4);
        let mut last = sim.population().count_where(|s| *s == C);
        assert_eq!(last, 32, "all nodes start as centres");
        for _ in 0..500 {
            sim.run_for(100);
            let now = sim.population().count_where(|s| *s == C);
            assert!(now <= last, "centres can only be eliminated");
            assert!(now >= 1, "a centre always survives");
            last = now;
        }
    }

    #[test]
    fn robust_under_fair_deterministic_schedulers() {
        let sim = Simulation::with_scheduler(protocol(), 12, 5, RoundRobin::new());
        netcon_core::testing::assert_stabilizes_sim(sim, is_stable, 10_000_000, 20_000);
        let sim = Simulation::with_scheduler(protocol(), 12, 5, ShuffledRounds::new());
        netcon_core::testing::assert_stabilizes_sim(sim, is_stable, 10_000_000, 20_000);
    }
}
