//! Protocol 4: **Global-Star** — the spanning-star constructor from the
//! paper's introduction (2 states, Θ(n² log n) expected time; optimal in
//! both size and time, Theorems 6–7).
//!
//! ```text
//! Q = {c, p},  q0 = c
//! (c, c, 0) → (c, p, 1)   // centres duel; loser becomes peripheral
//! (p, p, 1) → (p, p, 0)   // peripherals repel
//! (c, p, 0) → (c, p, 1)   // centre attracts peripherals
//! ```

use netcon_core::{
    EngineView, EnumerableMachine, FaultState, Link, Population, ProtocolBuilder, RuleProtocol,
    StateId,
};
use netcon_graph::properties::is_spanning_star;

/// `c` — centre (the initial state of every node).
pub const C: StateId = StateId::new(0);
/// `p` — peripheral.
pub const P: StateId = StateId::new(1);

/// Builds Protocol 4.
#[must_use]
pub fn protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("Global-Star");
    let c = b.state("c");
    let p = b.state("p");
    b.rule((c, c, Link::Off), (c, p, Link::On));
    b.rule((p, p, Link::On), (p, p, Link::Off));
    b.rule((c, p, Link::Off), (c, p, Link::On));
    b.build().expect("Protocol 4 is well-formed")
}

/// Certifies output stability: a unique centre `c` of full degree, every
/// peripheral of degree 1 (so no `(c,p,0)` or `(p,p,1)` rule applies, and
/// `(c,c,0)` is impossible with one centre).
#[must_use]
pub fn is_stable(pop: &Population<StateId>) -> bool {
    let centers = pop.nodes_where(|s| *s == C);
    centers.len() == 1
        && is_spanning_star(pop.edges())
        && pop.edges().degree(centers[0]) as usize == pop.n() - 1
}

/// [`is_stable`] over an engine-selection view
/// ([`Engine`](netcon_core::Engine)-driven sweeps): a unique centre of
/// full degree. State indices follow the declaration order of [`C`] and
/// [`P`] (centre is index 0).
#[must_use]
pub fn is_stable_view<M: EnumerableMachine>(v: &EngineView<'_, M>) -> bool {
    let centres = v.nodes_index(0);
    centres.len() == 1
        && v.active_count() == v.n() - 1
        && v.degree(centres[0]) == v.n() - 1
}

/// [`is_stable_view`] relative to the alive population of a faulted run:
/// a unique *alive* centre whose spokes reach every other alive node.
/// Crashed and not-yet-arrived nodes keep degree 0, so the edge counts
/// are over the alive subgraph automatically. The star self-repairs
/// spoke deletions and arrivals (`(c, p, 0) → (c, p, 1)` re-fires) and
/// survives leaf crashes unharmed; a *centre* crash leaves only
/// peripherals, for which no rule exists, so this predicate becomes
/// unreachable — the honest "does not self-repair" reading.
#[must_use]
pub fn is_stable_faulted<M: EnumerableMachine>(v: &EngineView<'_, M>, fs: &FaultState) -> bool {
    let alive = fs.alive_count();
    let centres: Vec<usize> = v
        .nodes_index(0)
        .into_iter()
        .filter(|&u| fs.is_alive(u))
        .collect();
    centres.len() == 1
        && alive >= 1
        && v.active_count() == alive - 1
        && v.degree(centres[0]) == alive - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes;
    use netcon_core::{RoundRobin, ShuffledRounds, Simulation};

    #[test]
    fn paper_metadata() {
        let p = protocol();
        assert_eq!(p.size(), 2, "Theorem 6: 2 states are necessary; 2 suffice");
        assert_eq!(p.rules().len(), 3);
    }

    #[test]
    fn constructs_spanning_star() {
        for n in [2, 3, 4, 8, 16, 32, 64] {
            let sim = assert_stabilizes(protocol(), n, 1, is_stable, 100_000_000, 50_000);
            assert!(is_spanning_star(sim.population().edges()));
            assert!(sim.is_quiescent());
        }
    }

    #[test]
    fn centre_count_never_increases() {
        let mut sim = Simulation::new(protocol(), 32, 4);
        let mut last = sim.population().count_where(|s| *s == C);
        assert_eq!(last, 32, "all nodes start as centres");
        for _ in 0..500 {
            sim.run_for(100);
            let now = sim.population().count_where(|s| *s == C);
            assert!(now <= last, "centres can only be eliminated");
            assert!(now >= 1, "a centre always survives");
            last = now;
        }
    }

    #[test]
    fn regrows_deleted_spokes() {
        use netcon_core::{Engine, FaultEvent, FaultPlan};
        // Delete three random spokes of the stable star: each orphaned
        // peripheral re-attaches through `(c, p, 0) → (c, p, 1)`.
        let n = 12;
        let plan = FaultPlan::new(21).at(u64::MAX, FaultEvent::DeleteRandomActiveEdges(3));
        let mut eng = Engine::auto_faulted(protocol().compile(), n, 2, plan);
        let fs0 = eng.fault_state().expect("faulted").clone();
        eng.run_until(|v| is_stable_faulted(v, &fs0), 1_000_000_000)
            .converged_at()
            .expect("phase 1 stabilizes");
        eng.apply_faults_now();
        assert_eq!(eng.to_population().edges().active_count(), n - 1 - 3);
        let eff = eng.effective_steps();
        let fs1 = eng.fault_state().expect("faulted").clone();
        eng.run_until(|v| is_stable_faulted(v, &fs1), eng.steps() + 1_000_000_000)
            .converged_at()
            .expect("the star regrows its spokes");
        assert!(eng.effective_steps() > eff, "repair fired at least 3 rules");
        assert!(is_stable(&eng.to_population()));
    }

    /// The node left as the unique centre by a plain run (the faulted
    /// runs below use crash-only plans of the same capacity, so their
    /// first phase is coin-for-coin identical and elects the same node).
    fn stabilized_centre(n: usize, seed: u64) -> usize {
        use netcon_core::Engine;
        let mut eng = Engine::auto(protocol().compile(), n, seed);
        eng.run_until(|v| v.count_index(0) == 1, 1_000_000_000)
            .converged_at()
            .expect("a single centre is elected");
        eng.to_population().nodes_where(|s| *s == C)[0]
    }

    #[test]
    fn survives_a_leaf_crash_unharmed() {
        use netcon_core::{Engine, FaultEvent, FaultPlan};
        let (n, seed) = (10, 4);
        let centre = stabilized_centre(n, seed);
        let leaf = (0..n).find(|&u| u != centre).expect("n > 1");
        let plan = FaultPlan::new(8).at(u64::MAX, FaultEvent::Crash(leaf as u32));
        let mut eng = Engine::auto_faulted(protocol().compile(), n, seed, plan);
        let fs0 = eng.fault_state().expect("faulted").clone();
        eng.run_until(|v| is_stable_faulted(v, &fs0), 1_000_000_000)
            .converged_at()
            .expect("phase 1 stabilizes");
        eng.apply_faults_now();
        // Losing a leaf costs exactly its spoke: the survivors already
        // form a spanning star over the alive set, nothing re-fires.
        let fs1 = eng.fault_state().expect("faulted").clone();
        assert_eq!(fs1.alive_count(), n - 1);
        let eff = eng.effective_steps();
        eng.run_faulted_to(eng.steps() + 1_000_000);
        assert_eq!(eng.effective_steps(), eff, "already stable on alive set");
        let pop = eng.to_population();
        assert_eq!(pop.edges().active_count(), n - 2);
        assert_eq!(pop.edges().degree(centre) as usize, n - 2);
    }

    #[test]
    fn centre_crash_is_not_repaired() {
        use netcon_core::{Engine, FaultEvent, FaultPlan};
        let (n, seed) = (10, 4);
        let centre = stabilized_centre(n, seed);
        let plan = FaultPlan::new(8).at(u64::MAX, FaultEvent::Crash(centre as u32));
        let mut eng = Engine::auto_faulted(protocol().compile(), n, seed, plan);
        let fs0 = eng.fault_state().expect("faulted").clone();
        eng.run_until(|v| is_stable_faulted(v, &fs0), 1_000_000_000)
            .converged_at()
            .expect("phase 1 stabilizes");
        eng.apply_faults_now();
        // All spokes died with the centre; the survivors are all `p`,
        // and no rule has a `p`-only left side that creates anything.
        let eff = eng.effective_steps();
        eng.run_faulted_to(eng.steps() + 2_000_000);
        assert_eq!(eng.effective_steps(), eff, "no rule fires among peripherals");
        assert_eq!(eng.to_population().edges().active_count(), 0);
    }

    #[test]
    fn targeted_centre_crash_freezes_forever() {
        // `centre_crash_is_not_repaired` (above) needs the test to
        // *look up* the elected centre and aim a scheduled crash at
        // it. An adaptive `CrashMaxDegree` adversary needs no such
        // help: at any stable star the centre is the unique
        // max-degree node, so one decision draw provably finds and
        // kills it — and the all-`p` survivors have no enabled rule,
        // ever. The same cadence against FT-Star merely delays it
        // (ft_star's `survives_the_targeted_centre_crash_cadence`).
        use netcon_core::{AdversaryPlan, AdversaryPolicy, Cadence, Engine, FaultPlan};
        let (n, seed) = (10, 4);
        let plan = FaultPlan::new(8).with_adversary(
            AdversaryPlan::new(Cadence::Burst(vec![200_000]))
                .policy(AdversaryPolicy::CrashMaxDegree),
        );
        let mut eng = Engine::auto_faulted(protocol().compile(), n, seed, plan);
        let fs0 = eng.fault_state().expect("faulted").clone();
        eng.run_until(|v| is_stable_faulted(v, &fs0), 200_000)
            .converged_at()
            .expect("stabilizes well before the decision draw");
        eng.run_faulted_to(200_000);
        let fs = eng.fault_state().expect("faulted").clone();
        assert_eq!(fs.decisions_taken(), 1);
        assert_eq!(fs.alive_count(), n - 1, "exactly the centre crashed");
        assert_eq!(
            eng.to_population().edges().active_count(),
            0,
            "the strike found the centre: every spoke edge died with it"
        );
        let eff = eng.effective_steps();
        eng.run_faulted_to(eng.steps() + 2_000_000);
        assert_eq!(eng.effective_steps(), eff, "no rule fires among peripherals");
    }

    #[test]
    fn robust_under_fair_deterministic_schedulers() {
        let sim = Simulation::with_scheduler(protocol(), 12, 5, RoundRobin::new());
        netcon_core::testing::assert_stabilizes_sim(sim, is_stable, 10_000_000, 20_000);
        let sim = Simulation::with_scheduler(protocol(), 12, 5, ShuffledRounds::new());
        netcon_core::testing::assert_stabilizes_sim(sim, is_stable, 10_000_000, 20_000);
    }
}
