//! **FT-Global-Star** — the fault-tolerant spanning-star constructor in
//! the crash-notification model of "Fault Tolerant Network Constructors"
//! (arXiv 1903.05992), layered over the paper's Protocol 4.
//!
//! ```text
//! Q = {c, p},  q0 = c
//! (c, c, 0) → (c, p, 1)   // centres duel; loser becomes peripheral
//! (p, p, 1) → (p, p, 0)   // peripherals repel
//! (c, p, 0) → (c, p, 1)   // centre attracts peripherals
//! (c, c, 1) → (c, p, 1)   // fault-only: a notified node re-duels over
//!                         //   a surviving spoke to another centre
//! notify: p → c           // losing a spoke makes a node a centre again
//! ```
//!
//! PR 6's `centre_crash_is_not_repaired` regression proves plain
//! Global-Star freezes forever after its centre crashes: the survivors
//! are all `p`, and no rule has a `p`-only left side. That freeze is
//! not an accident — under *silent* crashes a stale peripheral is
//! locally indistinguishable from a stable-star leaf, so any repair
//! rule would also be schedulable in the stable configuration and
//! destroy output stability. 1903.05992's answer is the
//! fault-notification model this module uses: a node that loses an
//! active edge to a crashed neighbour is told so, and FT-Global-Star's
//! notify map sends it back to `c`. The re-minted centres duel through
//! the ordinary rules and re-attract every survivor, so the star
//! re-stabilizes after *any* crash pattern.
//!
//! The fourth rule never matches in a fault-free run (active edges only
//! arise with a `p` endpoint), so the fault-free behaviour — including
//! coin consumption — is exactly Global-Star's. It exists because a
//! notified node can still hold spokes to *other* centres mid-
//! convergence: the resulting `(c, c, 1)` pair would otherwise be a
//! frozen non-star edge.

use netcon_core::{
    EngineView, EnumerableMachine, FaultState, Link, Population, ProtocolBuilder, RuleProtocol,
    SparsePop, StateId,
};

/// `c` — centre (the initial state of every node).
pub const C: StateId = StateId::new(0);
/// `p` — peripheral.
pub const P: StateId = StateId::new(1);

/// Builds FT-Global-Star.
#[must_use]
pub fn protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("FT-Global-Star");
    let c = b.state("c");
    let p = b.state("p");
    b.rule((c, c, Link::Off), (c, p, Link::On));
    b.rule((p, p, Link::On), (p, p, Link::Off));
    b.rule((c, p, Link::Off), (c, p, Link::On));
    b.rule((c, c, Link::On), (c, p, Link::On));
    b.on_crash(p, c);
    b.build().expect("FT-Global-Star is well-formed")
}

/// Certifies output stability of a fault-free run: a unique centre of
/// full degree — identical to
/// [`global_star::is_stable`](crate::global_star::is_stable), because
/// the fault-only rule cannot fire in any fault-free reachable
/// configuration.
#[must_use]
pub fn is_stable(pop: &Population<StateId>) -> bool {
    let centres = pop.nodes_where(|s| *s == C);
    centres.len() == 1
        && pop.edges().active_count() == pop.n() - 1
        && pop.edges().degree(centres[0]) as usize == pop.n() - 1
}

/// [`is_stable`] over an engine-selection view
/// ([`Engine`](netcon_core::Engine)-driven sweeps). State indices
/// follow the declaration order of [`C`] and [`P`].
#[must_use]
pub fn is_stable_view<M: EnumerableMachine>(v: &EngineView<'_, M>) -> bool {
    let centres = v.nodes_index(0);
    centres.len() == 1 && v.active_count() == v.n() - 1 && v.degree(centres[0]) == v.n() - 1
}

/// The fault-mode stability predicate: a unique *alive* centre whose
/// spokes reach every other alive node. Unlike plain Global-Star —
/// whose faulted predicate becomes unreachable after a centre crash —
/// FT-Global-Star re-enters this predicate after any crash burst, which
/// is what the paired regression against PR 6's freeze test checks.
#[must_use]
pub fn is_stable_faulted<M: EnumerableMachine>(v: &EngineView<'_, M>, fs: &FaultState) -> bool {
    let alive = fs.alive_count();
    let centres: Vec<usize> = v
        .nodes_index(0)
        .into_iter()
        .filter(|&u| fs.is_alive(u))
        .collect();
    centres.len() == 1
        && alive >= 1
        && v.active_count() == alive - 1
        && v.degree(centres[0]) == alive - 1
}

/// [`is_stable_faulted`] over a dense population snapshot — the form
/// the naive and event engines' `run_faulted_until` consume.
#[must_use]
pub fn is_stable_faulted_pop(pop: &Population<StateId>, fs: &FaultState) -> bool {
    let alive = fs.alive_count();
    let centres: Vec<usize> = pop
        .nodes_where(|s| *s == C)
        .into_iter()
        .filter(|&u| fs.is_alive(u))
        .collect();
    centres.len() == 1
        && alive >= 1
        && pop.edges().active_count() == alive - 1
        && pop.edges().degree(centres[0]) as usize == alive - 1
}

/// [`is_stable_faulted`] over the sparse view — the form
/// [`BucketSim::run_faulted_until`](netcon_core::BucketSim) consumes.
#[must_use]
pub fn is_stable_faulted_sparse(sp: &SparsePop, fs: &FaultState) -> bool {
    let alive = fs.alive_count();
    let centres: Vec<usize> = sp
        .nodes_index(0)
        .iter()
        .map(|&u| u as usize)
        .filter(|&u| fs.is_alive(u))
        .collect();
    centres.len() == 1
        && alive >= 1
        && sp.active_count() == alive - 1
        && sp.degree(centres[0]) == alive - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes;
    use netcon_core::{BucketSim, Engine, EventSim, FaultEvent, FaultPlan, Machine};
    use netcon_graph::properties::is_spanning_star;

    #[test]
    fn metadata_and_notify_map() {
        let p = protocol();
        assert_eq!(p.size(), 2);
        assert_eq!(p.rules().len(), 4);
        assert_eq!(p.crash_notify_target(P), Some(C));
        assert_eq!(p.crash_notify_target(C), None);
        assert_eq!(p.on_crash_notify(&P), Some(C));
    }

    #[test]
    fn constructs_spanning_star_fault_free() {
        for n in [2, 3, 8, 24] {
            let sim = assert_stabilizes(protocol(), n, 1, is_stable, 100_000_000, 50_000);
            assert!(is_spanning_star(sim.population().edges()));
            assert!(sim.is_quiescent());
        }
    }

    /// The node a fault-free run leaves as the unique centre. The
    /// fault-only rule and the notify map cannot fire before the first
    /// crash, so this is coin-for-coin the plain Global-Star election —
    /// asserted against the real Global-Star below.
    fn stabilized_centre(n: usize, seed: u64) -> usize {
        let mut eng = Engine::auto(protocol().compile(), n, seed);
        eng.run_until(|v| v.count_index(0) == 1, 1_000_000_000)
            .converged_at()
            .expect("a single centre is elected");
        eng.to_population().nodes_where(|s| *s == C)[0]
    }

    #[test]
    fn repairs_the_centre_crash_global_star_never_does() {
        // The same (n, seed, plan-seed) as global_star's
        // `centre_crash_is_not_repaired`, which proves the plain
        // protocol freezes with zero active edges forever. FT-Star's
        // phase 1 elects the *same* node (the extra rule and the
        // notify map are unreachable fault-free), the same plan kills
        // it — and the star re-stabilizes. Verified independently on
        // two engines sharing the plan.
        let (n, seed) = (10, 4);
        let centre = stabilized_centre(n, seed);
        {
            // Coin-identity with plain Global-Star's election.
            let mut eng = Engine::auto(crate::global_star::protocol().compile(), n, seed);
            eng.run_until(|v| v.count_index(0) == 1, 1_000_000_000)
                .converged_at()
                .expect("Global-Star elects a centre");
            let plain = eng.to_population().nodes_where(|s| *s == crate::global_star::C)[0];
            assert_eq!(centre, plain, "FT-Star's fault-free run is Global-Star's");
        }
        let plan = FaultPlan::new(8).at(u64::MAX, FaultEvent::Crash(centre as u32));

        // Engine 1: the event-driven engine.
        let mut ev = EventSim::new_faulted(protocol().compile(), n, seed, plan.clone());
        let fs0 = ev.fault_state().expect("faulted").clone();
        ev.run_until(|p| is_stable_faulted_pop(p, &fs0), 1_000_000_000)
            .converged_at()
            .expect("phase 1 stabilizes");
        ev.apply_faults_now();
        let fs1 = ev.fault_state().expect("faulted").clone();
        assert_eq!(fs1.alive_count(), n - 1);
        // Every survivor lost its spoke, was notified, and is a centre.
        let pop = ev.population();
        for u in (0..n).filter(|&u| u != centre) {
            assert_eq!(*pop.state(u), C, "survivor {u} was re-minted a centre");
        }
        ev.run_faulted_until(|p, _| is_stable_faulted_pop(p, &fs1), u64::MAX)
            .converged_at()
            .expect("FT-Star re-stabilizes after the centre crash");
        let pop = ev.population();
        assert_eq!(pop.edges().active_count(), n - 2, "star over n − 1 alive");

        // Engine 2: the state-bucketed engine, same shared plan.
        let mut bk = BucketSim::new_faulted(protocol().compile(), n, seed, plan);
        let fs0 = bk.fault_state().expect("faulted").clone();
        bk.run_until(|sp| is_stable_faulted_sparse(sp, &fs0), 1_000_000_000)
            .converged_at()
            .expect("phase 1 stabilizes");
        bk.apply_faults_now();
        let fs1 = bk.fault_state().expect("faulted").clone();
        bk.run_faulted_until(|sp, _| is_stable_faulted_sparse(sp, &fs1), u64::MAX)
            .converged_at()
            .expect("FT-Star re-stabilizes on the bucket engine too");
        assert_eq!(bk.view().active_count(), n - 2);
    }

    #[test]
    fn survives_the_targeted_centre_crash_cadence() {
        // The adaptive cadence that freezes plain Global-Star forever
        // (global_star's `targeted_centre_crash_freezes_forever`):
        // every `CrashMaxDegree` strike finds the elected centre —
        // asserted by the star collapsing to zero active edges at each
        // decision — and FT-Star's notify map re-mints the widowed
        // spokes, so the star re-forms over the survivors every time.
        use netcon_core::{AdversaryPlan, AdversaryPolicy, Cadence};
        let n = 12;
        let plan = FaultPlan::new(21).with_adversary(
            AdversaryPlan::new(Cadence::Periodic {
                start: 40_000,
                every: 40_000,
                count: 4,
            })
            .policy(AdversaryPolicy::CrashMaxDegree)
            .min_alive(6),
        );
        let mut eng = Engine::auto_faulted(protocol().compile(), n, 7, plan);
        for strike in 1..=4u64 {
            eng.run_faulted_to(strike * 40_000);
            let fs = eng.fault_state().expect("faulted").clone();
            assert_eq!(fs.decisions_taken(), u32::try_from(strike).expect("small"));
            assert_eq!(fs.alive_count(), n - strike as usize);
            assert_eq!(
                eng.to_population().edges().active_count(),
                0,
                "strike {strike} hit the centre: a stable star loses every edge"
            );
        }
        let fs = eng.fault_state().expect("faulted").clone();
        assert_eq!(fs.next_at(), None);
        eng.run_faulted_until(|v, _| is_stable_faulted(v, &fs), u64::MAX)
            .converged_at()
            .expect("the star re-forms after the final targeted strike");
        assert_eq!(fs.alive_count(), 8);
        assert_eq!(eng.to_population().edges().active_count(), 7, "star over 8");
    }

    #[test]
    fn survives_a_mid_convergence_crash_burst() {
        // Crash two nodes *early* (draw 50), while many centres still
        // hold spokes: this exercises the fault-only `(c, c, 1)` rule
        // (a notified node re-dueling over a surviving spoke).
        let n = 16;
        let plan = FaultPlan::new(9)
            .at(50, FaultEvent::CrashRandom)
            .at(50, FaultEvent::CrashRandom);
        let mut eng = Engine::auto_faulted(protocol().compile(), n, 3, plan);
        let fs = eng.fault_state().expect("faulted").project_final();
        eng.run_faulted_until(|v, _| is_stable_faulted(v, &fs), u64::MAX)
            .converged_at()
            .expect("stabilizes through the burst");
        assert_eq!(fs.alive_count(), n - 2);
    }

    #[test]
    fn rides_sustained_churn_to_a_star_over_the_survivors() {
        use netcon_core::ChurnPlan;
        let n = 12;
        let plan = ChurnPlan::new(31)
            .arrival_rate(2e-4)
            .departure_rate(2e-4)
            .min_alive(6)
            .horizon(40_000)
            .compile(n);
        let mut eng = Engine::auto_faulted(protocol().compile(), n, 17, plan);
        let fs = eng.fault_state().expect("faulted").project_final();
        eng.run_faulted_until(|v, _| is_stable_faulted(v, &fs), u64::MAX)
            .converged_at()
            .expect("re-stabilizes once the churn stream ends");
        assert!(fs.alive_count() >= 6, "floor held");
    }
}
