//! The **2^d-neighbour doubling protocol** from the end of Section 5 —
//! evidence that the target degree is *not* a lower bound on protocol
//! size: `Θ(d)` states suffice for a designated node to stably acquire
//! `2^d` neighbours.
//!
//! The seed node first collects 2 neighbours, then repeatedly doubles:
//! every upgrade of an `a_i` neighbour to `a_{i+1}` is paired with the
//! recruitment of one fresh `a_{i+1}` neighbour.
//!
//! ```text
//! (q0,  a0, 0) → (q0', a1, 1)
//! (q0', a0, 0) → (q,   a1, 1)
//! (q,   ai, 1) → (q_{i+1}, a_{i+1}, 1)    1 ≤ i ≤ d−1
//! (q_j, a0, 0) → (q,   a_j, 1)            2 ≤ j ≤ d
//! ```

use netcon_core::{Link, Population, ProtocolBuilder, RuleProtocol, StateId};

/// State handles for a doubling instance with parameter `d`.
///
/// Layout: `q0 = 0`, `q0' = 1`, `q = 2`, `a_i = 3 + i` (`0 ≤ i ≤ d`),
/// `q_j = 3 + d + (j − 1)` (`2 ≤ j ≤ d`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct States {
    /// The doubling parameter `d` (target degree `2^d`).
    pub d: u16,
}

impl States {
    /// The seed's initial state `q0`.
    #[must_use]
    pub fn q0(self) -> StateId {
        StateId::new(0)
    }

    /// The seed after its first recruit, `q0'`.
    #[must_use]
    pub fn q0p(self) -> StateId {
        StateId::new(1)
    }

    /// The seed's idle state `q`.
    #[must_use]
    pub fn q(self) -> StateId {
        StateId::new(2)
    }

    /// Non-seed state `a_i` (`0 ≤ i ≤ d`).
    #[must_use]
    pub fn a(self, i: u16) -> StateId {
        assert!(i <= self.d);
        StateId::new(3 + i)
    }

    /// The seed's pending-recruit state `q_j` (`2 ≤ j ≤ d`).
    #[must_use]
    pub fn pending(self, j: u16) -> StateId {
        assert!((2..=self.d).contains(&j));
        StateId::new(3 + self.d + (j - 1))
    }
}

/// Builds the doubling protocol for `d ≥ 1` (the seed acquires `2^d`
/// stable neighbours). Uses `2d + 3` states.
///
/// # Panics
///
/// Panics if `d == 0`.
#[must_use]
pub fn protocol(d: u16) -> RuleProtocol {
    assert!(d >= 1, "doubling needs d >= 1");
    let mut b = ProtocolBuilder::new(format!("Doubling-2^{d}"));
    let st = States { d };
    b.state("q0");
    b.state("q0'");
    b.state("q");
    for i in 0..=d {
        b.state(format!("a{i}"));
    }
    for j in 2..=d {
        b.state(format!("q{j}"));
    }
    let (off, on) = (Link::Off, Link::On);
    b.rule((st.q0(), st.a(0), off), (st.q0p(), st.a(1), on));
    b.rule((st.q0p(), st.a(0), off), (st.q(), st.a(1), on));
    for i in 1..d {
        b.rule((st.q(), st.a(i), on), (st.pending(i + 1), st.a(i + 1), on));
    }
    for j in 2..=d {
        b.rule((st.pending(j), st.a(0), off), (st.q(), st.a(j), on));
    }
    b.build().expect("doubling protocol is well-formed")
}

/// The initial configuration: node 0 is the seed (`q0`), everyone else is
/// free (`a0`).
///
/// # Panics
///
/// Panics if `n < 2^d + 1` (not enough nodes to reach the target degree).
#[must_use]
pub fn initial_population(n: usize, d: u16) -> Population<StateId> {
    let st = States { d };
    assert!(
        n > (1usize << d),
        "need at least 2^d + 1 = {} nodes",
        (1usize << d) + 1
    );
    let mut pop = Population::new(n, st.a(0));
    pop.set_state(0, st.q0());
    pop
}

/// Certifies output stability: the seed is idle in `q` with exactly `2^d`
/// active neighbours, all saturated at level `a_d` (no rule matches
/// `(q, a_d, 1)` or the remaining `a_0`s).
#[must_use]
pub fn is_stable(pop: &Population<StateId>, d: u16) -> bool {
    let st = States { d };
    let seed = 0usize;
    *pop.state(seed) == st.q()
        && pop.edges().degree(seed) as usize == 1usize << d
        && pop
            .edges()
            .neighbors(seed)
            .all(|v| *pop.state(v) == st.a(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes_sim;
    use netcon_core::Simulation;

    #[test]
    fn size_is_linear_in_d() {
        for d in 1..=6 {
            assert_eq!(protocol(d).size(), usize::from(2 * d + 3));
        }
    }

    #[test]
    fn seed_acquires_exactly_two_to_the_d_neighbors() {
        for d in 1..=4u16 {
            let n = (1usize << d) + 4;
            let pop = initial_population(n, d);
            let sim = Simulation::from_population(protocol(d), pop, u64::from(d));
            let sim = assert_stabilizes_sim(sim, |p| is_stable(p, d), 500_000_000, 50_000);
            assert_eq!(sim.population().edges().degree(0) as usize, 1usize << d);
            assert!(sim.is_quiescent());
        }
    }

    #[test]
    fn degree_never_exceeds_target() {
        let d = 3;
        let pop = initial_population(16, d);
        let mut sim = Simulation::from_population(protocol(d), pop, 5);
        for _ in 0..200 {
            sim.run_for(100);
            assert!(sim.population().edges().degree(0) <= 8);
        }
    }

    #[test]
    #[should_panic(expected = "2^d + 1")]
    fn insufficient_nodes_rejected() {
        let _ = initial_population(8, 3);
    }
}
