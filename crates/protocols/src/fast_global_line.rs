//! Protocol 2: **Fast-Global-Line** — the paper's fastest spanning-line
//! constructor (9 states, O(n³) expected time, Theorem 4).
//!
//! Instead of merging whole lines (the slow random walk of Protocol 1), a
//! winning leader *steals one node* from the losing line and puts the rest
//! of it to sleep; sleeping lines only ever lose nodes.
//!
//! ```text
//! Q = {q0, q1, q2, q2', l, l', l'', f0, f1}
//! (q0,  q0,  0) → (q1,  l,   1)   // two isolated nodes start a line
//! (l,   q0,  0) → (q2,  l,   1)   // expand towards an isolated node
//! (l,   l,   0) → (q2', l',  1)   // leaders duel: winner grabs the loser
//! (l',  q2,  1) → (l'', f1,  0)   // detach the stolen node from its line
//! (l',  q1,  1) → (l'', f0,  0)   // (loser's line had length 2: one node
//!                                 //  is stolen, the other sleeps alone)
//! (l'', q2', 1) → (l,   q2,  1)   // finish the steal: awake line grew by 1
//! (l,   f0,  0) → (q2,  l,   1)   // absorb a sleeping isolated node
//! (l,   f1,  0) → (q2', l',  1)   // steal from a sleeping line
//! ```

use netcon_core::{Link, Population, ProtocolBuilder, RuleProtocol, StateId};
use netcon_graph::properties::is_spanning_line;

/// `q0` — initial, isolated, awake.
pub const Q0: StateId = StateId::new(0);
/// `q1` — non-leader endpoint of an awake line.
pub const Q1: StateId = StateId::new(1);
/// `q2` — internal node of a line.
pub const Q2: StateId = StateId::new(2);
/// `q2'` — the old winner-leader position during a steal.
pub const Q2P: StateId = StateId::new(3);
/// `l` — awake leader endpoint.
pub const L: StateId = StateId::new(4);
/// `l'` — leader mid-steal (stolen node still attached to loser line).
pub const LP: StateId = StateId::new(5);
/// `l''` — leader finishing a steal.
pub const LPP: StateId = StateId::new(6);
/// `f0` — sleeping isolated node.
pub const F0: StateId = StateId::new(7);
/// `f1` — sleeping leader endpoint of a sleeping line.
pub const F1: StateId = StateId::new(8);

/// Builds Protocol 2.
#[must_use]
pub fn protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("Fast-Global-Line");
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let q2 = b.state("q2");
    let q2p = b.state("q2'");
    let l = b.state("l");
    let lp = b.state("l'");
    let lpp = b.state("l''");
    let f0 = b.state("f0");
    let f1 = b.state("f1");
    b.rule((q0, q0, Link::Off), (q1, l, Link::On));
    b.rule((l, q0, Link::Off), (q2, l, Link::On));
    b.rule((l, l, Link::Off), (q2p, lp, Link::On));
    b.rule((lp, q2, Link::On), (lpp, f1, Link::Off));
    b.rule((lp, q1, Link::On), (lpp, f0, Link::Off));
    b.rule((lpp, q2p, Link::On), (l, q2, Link::On));
    b.rule((l, f0, Link::Off), (q2, l, Link::On));
    b.rule((l, f1, Link::Off), (q2p, lp, Link::On));
    b.build().expect("Protocol 2 is well-formed")
}

/// Certifies output stability: the active graph is a spanning line *and*
/// no steal is in progress.
///
/// Unlike Protocol 1, the active graph can transiently be a spanning line
/// in the middle of a steal (right after `(l, l, 0)` joins the winner's
/// line to the loser's), so the predicate additionally requires all nodes
/// to be in settled states `{q1, q2, l}` with a unique leader.
#[must_use]
pub fn is_stable(pop: &Population<StateId>) -> bool {
    let mut leaders = 0usize;
    for s in pop.states() {
        match *s {
            Q1 | Q2 => {}
            L => leaders += 1,
            _ => return false,
        }
    }
    leaders == 1 && is_spanning_line(pop.edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes;
    use netcon_core::Simulation;

    #[test]
    fn paper_metadata() {
        let p = protocol();
        assert_eq!(p.size(), 9, "Table 2: Fast-Global-Line uses 9 states");
        assert_eq!(p.rules().len(), 8);
        for (name, id) in [
            ("q0", Q0),
            ("q1", Q1),
            ("q2", Q2),
            ("q2'", Q2P),
            ("l", L),
            ("l'", LP),
            ("l''", LPP),
            ("f0", F0),
            ("f1", F1),
        ] {
            assert_eq!(p.state(name), Some(id));
        }
    }

    #[test]
    fn constructs_spanning_line() {
        for n in [2, 3, 5, 8, 16, 24] {
            for seed in 0..3 {
                let sim = assert_stabilizes(protocol(), n, seed, is_stable, 80_000_000, 40_000);
                assert!(is_spanning_line(sim.population().edges()));
                assert!(sim.is_quiescent());
            }
        }
    }

    #[test]
    fn spanning_line_mid_steal_is_not_reported_stable() {
        // Build the configuration the doc comment warns about: two lines
        // just joined by (l, l, 0) → (q2', l', 1). Active graph is a
        // spanning line but the steal must still run.
        let p = protocol();
        let mut pop = Population::new(4, Q0);
        // Line A: 0(q1) — 1(q2'); Line B: 2(l') — 3(q1); joined 1—2.
        pop.set_state(0, Q1);
        pop.set_state(1, Q2P);
        pop.set_state(2, LP);
        pop.set_state(3, Q1);
        pop.edges_mut().activate(0, 1);
        pop.edges_mut().activate(1, 2);
        pop.edges_mut().activate(2, 3);
        assert!(is_spanning_line(pop.edges()));
        assert!(!is_stable(&pop));
        // And the protocol indeed keeps changing edges from here.
        let mut sim = Simulation::from_population(p, pop, 1);
        let outcome = sim.run_until(is_stable, 10_000_000);
        assert!(outcome.stabilized());
    }

    #[test]
    fn convergence_times_are_comparable_at_small_n() {
        // At n = 24 both protocols converge within a few ×10⁵ steps; the
        // asymptotic separation (O(n³) vs Ω(n⁴)) only emerges at larger n
        // and is measured by the Table 2 bench, not asserted here (the
        // PODC'14 constants actually favour Simple-Global-Line at small n).
        let steps = |p: netcon_core::RuleProtocol,
                     stable: fn(&Population<StateId>) -> bool| {
            let mut total = 0u64;
            for seed in 0..5 {
                let mut sim = Simulation::new(p.clone(), 24, seed);
                let out = sim.run_until(stable, 2_000_000_000);
                total += out.converged_at().expect("stabilizes");
            }
            total / 5
        };
        let fast = steps(protocol(), is_stable);
        let simple = steps(
            crate::simple_global_line::protocol(),
            crate::simple_global_line::is_stable,
        );
        assert!(fast > 0 && simple > 0);
        assert!(
            fast < 10_000_000 && simple < 10_000_000,
            "unexpectedly slow at n=24: fast={fast}, simple={simple}"
        );
    }
}
