//! Executes every bench target (not just compiles them) and writes
//! `BENCH_PR10.json`: per-bench wall-clock, the engine speedup records
//! (uniform *and* ShuffledRounds), per-engine measured memory, the
//! fault-layer repair-time record (`perturbation_frontier`), the
//! continuous-churn availability record (`churn_frontier`), the
//! adaptive-adversary knee record (`adversary_frontier`), and the
//! frontier ladders — plus an optional regression gate against a
//! committed baseline. `crates/bench/README.md` documents the JSON
//! schema, the carry-forward rules, and the `--check` semantics.
//!
//! ```sh
//! NETCON_BENCH_SCALE=1 cargo run --release -p netcon-bench --bin perf_smoke
//! NETCON_BENCH_SCALE=1 cargo run --release -p netcon-bench --bin perf_smoke -- \
//!     --out bench-smoke.json --check BENCH_PR10.json   # CI gate
//! ```
//!
//! `NETCON_BENCH_SCALE` (percent) is inherited by the spawned bench
//! processes and by the in-process engine measurement; CI uses the
//! minimum (1) so the whole suite stays in smoke-test territory. The
//! output path defaults to `BENCH_PR10.json` in the workspace root
//! (`--out <path>` overrides). The `perturbation_frontier`,
//! `churn_frontier`, and `adversary_frontier` sections are cheap and
//! always regenerated live; `NETCON_FAULT_SEVERITY` /
//! `NETCON_FAULT_TRIALS` shape the fault burst, `NETCON_CHURN_RATE` /
//! `NETCON_CHURN_TRIALS` the churn stream, and
//! `NETCON_ADVERSARY_TRIALS` / `NETCON_ADVERSARY_HORIZON` the targeted
//! strike ladder.
//!
//! `--check <baseline.json>` compares this run's per-bench wall-clock
//! against the baseline's `benches` section and exits non-zero when any
//! target regressed by more than `NETCON_BENCH_TOLERANCE` × (default
//! 2.5×, small-time floor 0.1 s); the failure message names every
//! offending target with both wall times, the measured ratio, and the
//! active tolerance. The gate only fires when the two runs used the same
//! `bench_scale_pct` — comparing a smoke run against a full-scale record
//! would be noise.
//!
//! Expensive sections are regenerated only on request and carried
//! forward otherwise: `scaling_frontier` (bucket engine at n ∈
//! {20k, 50k, 100k}, ~15 min) under `NETCON_FRONTIER=1`,
//! `round_frontier` (RoundSim ladder up to `NETCON_ROUND_FRONTIER_N`,
//! default 1024) under `NETCON_ROUND_FRONTIER=1`, `mega_frontier`
//! (Simple-Global-Line at n = 10⁶ on the batched-endgame path, with
//! its ≤ 60 s single-core acceptance gate) under
//! `NETCON_MEGA_FRONTIER=1`, and `large_sample_agreement_n256` under
//! `NETCON_NAIVE_TRIALS_256=<k>`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use netcon_analysis::availability::sweep_availability;
use netcon_analysis::knee::{detect_knee, periodic_adversary_plan, sweep_availability_vs_rate};
use netcon_analysis::repair::{sweep_repair_time, FaultSeverity};
use netcon_analysis::sweep::SweepConfig;
use netcon_bench::harness::scale;
use netcon_bench::speedup::{
    bucket_stats, compare_engines, compare_round_engines, Comparison,
};
use netcon_core::{
    AdversaryPolicy, BucketSim, ChurnPlan, CompiledTable, EventSim, Link, ProtocolBuilder,
    RoundSim, Simulation, SparsePop,
};
use netcon_protocols::{
    cycle_cover, fast_global_line, ft_line, ft_star, global_star, simple_global_line,
};

fn bench_targets(bench_dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(bench_dir)
        .expect("crates/bench/benches exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_owned)
        })
        .collect();
    names.sort();
    names
}

/// Extracts a top-level `"key": { … }` object (key line through its
/// matching closing brace, no trailing comma/newline) from an existing
/// output file, so cheap re-runs preserve expensive records.
///
/// The needle is anchored to the section's own line (`\n  "key": {`):
/// a bench *target* of the same name appears earlier in the file as
/// `{ "name": "key", … }` inside the `benches` array, and an unanchored
/// search used to latch onto that row and carry forward garbage.
fn carry_forward_section(out_path: &Path, key: &str) -> Option<String> {
    let old = std::fs::read_to_string(out_path).ok()?;
    let needle = format!("\n  \"{key}\": {{");
    let start = old.find(&needle)? + 1;
    let brace = start + old[start..].find('{')?;
    let mut depth = 0usize;
    for (i, ch) in old[brace..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(old[start..=brace + i].to_owned());
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses the `benches` array of a perf_smoke JSON (our own format: one
/// `{ "name": …, "wall_s": … }` object per line) plus its
/// `bench_scale_pct`.
fn parse_baseline(text: &str) -> (Option<String>, Vec<(String, f64)>) {
    let scale_pct = text
        .find("\"bench_scale_pct\"")
        .and_then(|i| text[i..].split('"').nth(3).map(str::to_owned));
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(ni) = line.find("\"name\": \"") else { continue };
        let rest = &line[ni + 9..];
        let Some(name) = rest.split('"').next() else { continue };
        let Some(wi) = line.find("\"wall_s\": ") else { continue };
        let wall: f64 = line[wi + 10..]
            .trim_end_matches(|c: char| c == '}' || c == ',' || c.is_whitespace())
            .parse()
            .unwrap_or(f64::NAN);
        if wall.is_finite() {
            rows.push((name.to_owned(), wall));
        }
    }
    (scale_pct, rows)
}

/// The regression gate: every target present in both runs must stay
/// within `tolerance ×` of the baseline (with a 0.1 s floor so
/// micro-targets cannot flake the gate on scheduler noise).
fn check_against_baseline(
    baseline_path: &Path,
    current_scale: &str,
    rows: &[(String, f64)],
) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let (base_scale, baseline) = parse_baseline(&text);
    let base_scale = base_scale.unwrap_or_default();
    if base_scale != current_scale {
        println!(
            "--check: baseline scale {base_scale}% != current {current_scale}%; \
             gate skipped (regenerate the baseline at the matching scale)"
        );
        return Ok(());
    }
    let tolerance: f64 = std::env::var("NETCON_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.5);
    let mut failures = Vec::new();
    println!("\n--check against {} (tolerance {tolerance}x):", baseline_path.display());
    for (name, wall) in rows {
        let Some((_, base)) = baseline.iter().find(|(b, _)| b == name) else {
            println!("  {name:<24} {wall:>8.3}s (new target, no baseline)");
            continue;
        };
        let floor = base.max(0.1);
        let ratio = wall / floor;
        let verdict = if *wall > tolerance * floor { "REGRESSED" } else { "ok" };
        println!("  {name:<24} {wall:>8.3}s vs {base:>8.3}s ({ratio:>5.2}x) {verdict}");
        if *wall > tolerance * floor {
            failures.push(format!(
                "{name}: current {wall:.3}s vs baseline {base:.3}s \
                 ({ratio:.2}x, tolerance {tolerance}x over max(baseline, 0.1s))"
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} target(s) regressed beyond {tolerance}x:\n  {}",
            failures.len(),
            failures.join("\n  ")
        ))
    }
}

fn json_engine(out: &mut String, key: &str, c: &Comparison) {
    let _ = write!(
        out,
        "    \"{key}\": {{\n      \"n\": {},\n      \"event_trials\": {},\n      \"event_mean_converged_at\": {:.1},\n      \"event_mean_total_steps\": {:.1},\n      \"event_mean_effective_steps\": {:.1},\n      \"event_wall_s\": {:.4},\n      \"naive_trials\": {},\n      \"naive_mean_converged_at\": {:.1},\n      \"naive_wall_s\": {:.4},\n      \"speedup_per_trial\": {:.1},\n      \"mean_rel_diff\": {:.4}\n    }}",
        c.n,
        c.event.trials,
        c.event.mean_converged,
        c.event.mean_steps,
        c.event.mean_effective,
        c.event.wall_s,
        c.naive.trials,
        c.naive.mean_converged,
        c.naive.wall_s,
        c.speedup,
        c.mean_rel_diff,
    );
}

/// Constructed-engine memory at a ladder of sizes: the measured
/// Θ(n²)-vs-O(n) record (`approx_mem_bytes`, not an estimate). Engines
/// whose construction would not fit the CI box are reported as `null`.
fn engine_memory_section() -> String {
    let protocol = simple_global_line::protocol();
    let compiled = protocol.compile();
    let mut s = String::from("  \"engine_memory_bytes\": {\n");
    let _ = writeln!(
        s,
        "    \"note\": \"approx_mem_bytes of freshly constructed engines, Simple-Global-Line; null = dense structures would not fit the CI box\","
    );
    s.push_str("    \"rows\": [\n");
    let sizes = [256usize, 2_000, 8_000, 20_000, 100_000];
    for (i, &n) in sizes.iter().enumerate() {
        let naive = if n <= 20_000 {
            format!("{}", Simulation::new(protocol.clone(), n, 1).approx_mem_bytes())
        } else {
            "null".into()
        };
        let event = if n <= 8_000 {
            format!("{}", EventSim::new(compiled.clone(), n, 1).approx_mem_bytes())
        } else {
            "null".into()
        };
        let bucket = BucketSim::new(compiled.clone(), n, 1).approx_mem_bytes();
        let event_estimate = EventSim::<CompiledTable>::dense_mem_estimate(n);
        let comma = if i + 1 < sizes.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{ \"n\": {n}, \"naive\": {naive}, \"event\": {event}, \"event_estimate\": {event_estimate}, \"bucket\": {bucket} }}{comma}"
        );
    }
    s.push_str("    ]\n  }");
    s
}

/// The bucket engine's head-to-head record at n = 256 (its overhead
/// regime: small n, where the dense engine is fastest), with the
/// measured memory column.
fn bucket_engine_section(scale_trials: usize) -> String {
    let mut s = String::from("  \"bucket_engine\": {\n");
    let mut first = true;
    for (key, protocol, sparse) in [
        (
            "simple_global_line_n256",
            simple_global_line::protocol(),
            simple_global_line::is_stable_sparse as fn(&SparsePop) -> bool,
        ),
        (
            "cycle_cover_n256",
            cycle_cover::protocol(),
            cycle_cover::is_stable_sparse as fn(&SparsePop) -> bool,
        ),
    ] {
        let (stats, mem) = bucket_stats(&protocol, sparse, 256, scale_trials, 9);
        if !first {
            s.push_str(",\n");
        }
        first = false;
        let _ = write!(
            s,
            "    \"{key}\": {{\n      \"n\": 256,\n      \"trials\": {},\n      \"mean_converged_at\": {:.1},\n      \"mean_effective_steps\": {:.1},\n      \"wall_s\": {:.4},\n      \"approx_mem_bytes\": {}\n    }}",
            stats.trials, stats.mean_converged, stats.mean_effective, stats.wall_s, mem
        );
    }
    s.push_str("\n  }");
    s
}

/// The ShuffledRounds head-to-head record at n = 256: `RoundSim` vs the
/// naive round-playing loop on Simple-Global-Line, with convergence in
/// draws and rounds — the speedup-over-naive-ShuffledRounds acceptance
/// record.
fn round_engine_section(round_trials: usize, naive_trials: usize) -> (String, f64) {
    let c = compare_round_engines(
        &simple_global_line::protocol(),
        simple_global_line::is_stable,
        256,
        round_trials,
        naive_trials,
        9,
    );
    let mut s = String::from("  \"round_engine\": {\n");
    let _ = write!(
        s,
        "    \"simple_global_line_n256\": {{\n      \"n\": {},\n      \"scheduler\": \"shuffled-rounds\",\n      \"round_trials\": {},\n      \"round_mean_converged_at\": {:.1},\n      \"round_mean_rounds\": {:.1},\n      \"round_mean_effective_steps\": {:.1},\n      \"round_wall_s\": {:.4},\n      \"naive_trials\": {},\n      \"naive_mean_converged_at\": {:.1},\n      \"naive_mean_rounds\": {:.1},\n      \"naive_wall_s\": {:.4},\n      \"speedup_per_trial\": {:.1},\n      \"mean_rel_diff\": {:.4}\n    }}\n  }}",
        c.n,
        c.round.trials,
        c.round.mean_converged,
        c.round_mean_rounds,
        c.round.mean_effective,
        c.round.wall_s,
        c.naive.trials,
        c.naive.mean_converged,
        c.naive_mean_rounds,
        c.naive.wall_s,
        c.speedup,
        c.mean_rel_diff,
    );
    (s, c.speedup)
}

/// The round-frontier record: `RoundSim` alone at a doubling ladder of
/// sizes up to `NETCON_ROUND_FRONTIER_N` (default 1024) — sizes whose
/// naive round-player would take hours. Only under
/// `NETCON_ROUND_FRONTIER=1`.
fn round_frontier_section() -> String {
    // The ladder always includes its n = 256 base rung, so smaller caps
    // are clamped up — and the recorded note states the effective cap.
    let cap: usize = std::env::var("NETCON_ROUND_FRONTIER_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
        .max(256);
    let protocol = simple_global_line::protocol().compile();
    let mut s = String::from("  \"round_frontier\": {\n");
    let _ = writeln!(
        s,
        "    \"note\": \"regenerate with NETCON_ROUND_FRONTIER=1 cargo run --release -p netcon-bench --bin perf_smoke (ladder cap NETCON_ROUND_FRONTIER_N={cap}); runs without that variable carry this section forward\","
    );
    let _ = writeln!(s, "    \"simple_global_line\": [");
    let sizes: Vec<usize> = std::iter::successors(Some(256usize), |&n| Some(n * 2))
        .take_while(|&n| n <= cap)
        .collect();
    for (i, &n) in sizes.iter().enumerate() {
        println!("==> round frontier: simple_global_line n = {n} (RoundSim)");
        let m = (n as u64) * (n as u64 - 1) / 2;
        let t0 = Instant::now();
        let mut sim = RoundSim::new(protocol.clone(), n, 2014 + n as u64);
        let out = sim.run_until(simple_global_line::is_stable, u64::MAX);
        let wall = t0.elapsed().as_secs_f64();
        let converged = out
            .converged_at()
            .unwrap_or_else(|| panic!("simple_global_line did not stabilize at n={n}"));
        let comma = if i + 1 < sizes.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{ \"n\": {n}, \"engine\": \"round-dense\", \"converged_at\": {converged}, \"converged_rounds\": {}, \"effective_steps\": {}, \"wall_s\": {wall:.2}, \"approx_mem_bytes\": {} }}{comma}",
            converged.div_ceil(m),
            sim.effective_steps(),
            sim.approx_mem_bytes(),
        );
    }
    s.push_str("    ]\n  }");
    s
}

/// The fault-layer repair-time record: [`sweep_repair_time`] on the two
/// canonical self-repair workloads (matching under the
/// `NETCON_FAULT_SEVERITY` mixed burst, Global-Star under fixed spoke
/// deletions — the same pair the `perturbation_frontier` bench target
/// prints). Cheap at these sizes, so it regenerates live on every run,
/// including CI's scale-1 smoke: the fault layer has no carried-forward
/// blind spot. `NETCON_FAULT_TRIALS` overrides the trial count.
fn perturbation_frontier_section() -> String {
    let severity = match std::env::var("NETCON_FAULT_SEVERITY") {
        Ok(s) => FaultSeverity::parse(&s)
            .unwrap_or_else(|e| panic!("invalid NETCON_FAULT_SEVERITY: {e}")),
        Err(_) => FaultSeverity::default(),
    };
    let trials = std::env::var("NETCON_FAULT_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| scale(40).max(4));
    // Odd sizes: the stabilized odd-n matching keeps one unmatched
    // survivor, so the default burst's single arrival has a partner and
    // the repair column is non-degenerate (see the bench target).
    let cfg = SweepConfig {
        sizes: vec![25, 49],
        trials,
        base_seed: 41,
    };

    let matching = {
        let mut b = ProtocolBuilder::new("matching");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, Link::Off), (m, m, Link::On));
        b.build().expect("valid")
    };
    let matching_table = sweep_repair_time(
        &cfg,
        &matching,
        severity,
        |v, fs| {
            (0..v.n())
                .filter(|&u| fs.is_alive(u) && v.state_index(u) == 0)
                .count()
                <= 1
        },
        1_000_000_000,
    );
    let spokes = FaultSeverity {
        crashes: 0,
        arrivals: 0,
        edge_deletions: 2,
    };
    let star_table = sweep_repair_time(
        &cfg,
        &global_star::protocol(),
        spokes,
        global_star::is_stable_faulted,
        1_000_000_000,
    );

    let mut s = String::from("  \"perturbation_frontier\": {\n");
    let _ = writeln!(
        s,
        "    \"note\": \"mean steps from a seeded fault burst back to stability (netcon_analysis::repair); regenerated live on every run — NETCON_FAULT_SEVERITY and NETCON_FAULT_TRIALS shape it\","
    );
    let mut first = true;
    for (key, sev, table) in [
        ("maximum_matching", severity, &matching_table),
        ("global_star_spokes", spokes, &star_table),
    ] {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        let _ = writeln!(
            s,
            "    \"{key}\": {{\n      \"severity\": \"{},{},{}\",\n      \"trials\": {trials},\n      \"rows\": [",
            sev.crashes, sev.arrivals, sev.edge_deletions
        );
        for (i, row) in table.rows.iter().enumerate() {
            let comma = if i + 1 < table.rows.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{ \"n\": {}, \"mean_repair_steps\": {:.1}, \"sd\": {:.1}, \"median\": {:.1}, \"max\": {:.0} }}{comma}",
                row.n, row.summary.mean, row.summary.std_dev, row.summary.median, row.summary.max
            );
        }
        let _ = write!(s, "      ]\n    }}");
    }
    s.push_str("\n  }");
    s
}

/// The continuous-churn availability record:
/// [`sweep_availability`] on the two fault-tolerant constructors (the
/// same pair the `churn_frontier` bench target prints): FT-Global-Star
/// re-electing through crashes, FT-Spanning-Line paying a restart wave
/// per crash. Cheap at these sizes, so it regenerates live on every
/// run, including CI's scale-1 smoke. `NETCON_CHURN_RATE` sets the
/// symmetric per-draw rate (default `1e-4`); `NETCON_CHURN_TRIALS`
/// overrides the trial count.
fn churn_frontier_section() -> String {
    let rate: f64 = match std::env::var("NETCON_CHURN_RATE") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|e| panic!("invalid NETCON_CHURN_RATE {s:?}: {e}")),
        Err(_) => 1e-4,
    };
    let trials = std::env::var("NETCON_CHURN_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| scale(40).max(4));

    // Same shapes as the bench target: the star converges fast enough
    // for many stable windows at a 60k horizon; the line runs smaller
    // and longer because every crash costs a restart-wave rebuild.
    let star_cfg = SweepConfig {
        sizes: vec![16, 32],
        trials,
        base_seed: 83,
    };
    let star_churn = ChurnPlan::new(0)
        .arrival_rate(rate)
        .departure_rate(rate)
        .min_alive(8)
        .horizon(60_000);
    let star = sweep_availability(
        &star_cfg,
        &ft_star::protocol(),
        star_churn,
        ft_star::is_stable_faulted,
        u64::MAX,
    );
    let line_cfg = SweepConfig {
        sizes: vec![10, 14],
        trials,
        base_seed: 89,
    };
    let line_churn = ChurnPlan::new(0)
        .arrival_rate(rate)
        .departure_rate(rate)
        .min_alive(5)
        .horizon(150_000);
    let line = sweep_availability(
        &line_cfg,
        &ft_line::protocol(),
        line_churn,
        ft_line::is_stable_faulted,
        u64::MAX,
    );

    let mut s = String::from("  \"churn_frontier\": {\n");
    let _ = writeln!(
        s,
        "    \"note\": \"mean fraction of draws with a stable output under sustained Poisson churn (netcon_analysis::availability); regenerated live on every run — NETCON_CHURN_RATE and NETCON_CHURN_TRIALS shape it\","
    );
    let mut first = true;
    for (key, horizon, table) in [
        ("ft_global_star", 60_000u64, &star),
        ("ft_spanning_line", 150_000u64, &line),
    ] {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        let _ = writeln!(
            s,
            "    \"{key}\": {{\n      \"rate_per_draw_each_way\": {rate:e},\n      \"horizon_draws\": {horizon},\n      \"trials\": {trials},\n      \"rows\": [",
        );
        for (i, row) in table.rows.iter().enumerate() {
            let comma = if i + 1 < table.rows.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{ \"n\": {}, \"mean_fraction_available\": {:.4}, \"sd\": {:.4}, \"min\": {:.4} }}{comma}",
                row.n, row.summary.mean, row.summary.std_dev, row.summary.min
            );
        }
        let _ = write!(s, "      ]\n    }}");
    }
    s.push_str("\n  }");
    s
}

/// The adaptive-adversary knee record:
/// [`sweep_availability_vs_rate`] ladders for Global-Star vs
/// FT-Global-Star under the targeted `CrashMaxDegree` cadence (the same
/// pair, ladder, and seeds the `adversary_frontier` bench target
/// asserts its guardrails on), with the two-segment log–log knee of
/// each curve. Cheap at these sizes, so it regenerates live on every
/// run, including CI's scale-1 smoke. `NETCON_ADVERSARY_TRIALS`
/// overrides the trials per rung, `NETCON_ADVERSARY_HORIZON` the draws
/// per measurement (default 40k).
fn adversary_frontier_section() -> String {
    let rates = [2.5e-5, 5e-5, 1e-4, 2e-4, 4e-4, 8e-4];
    let trials = std::env::var("NETCON_ADVERSARY_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| scale(12).max(3));
    let horizon: u64 = match std::env::var("NETCON_ADVERSARY_HORIZON") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|e| panic!("invalid NETCON_ADVERSARY_HORIZON {s:?}: {e}")),
        Err(_) => 40_000,
    };
    let (n, min_alive, max_steps) = (16usize, 8usize, 400_000u64);
    let plan = |rate: f64, seed: u64, _n: usize| {
        periodic_adversary_plan(rate, seed, horizon, &[AdversaryPolicy::CrashMaxDegree], min_alive)
    };
    let ft = sweep_availability_vs_rate(
        &ft_star::protocol(),
        n,
        &rates,
        trials,
        131,
        plan,
        ft_star::is_stable_faulted,
        max_steps,
    );
    let plain = sweep_availability_vs_rate(
        &global_star::protocol(),
        n,
        &rates,
        trials,
        137,
        plan,
        global_star::is_stable_faulted,
        max_steps,
    );

    let mut s = String::from("  \"adversary_frontier\": {\n");
    let _ = writeln!(
        s,
        "    \"note\": \"mean fraction of draws with a stable output under the adaptive CrashMaxDegree cadence, vs strike rate (netcon_analysis::knee); regenerated live on every run — NETCON_ADVERSARY_TRIALS and NETCON_ADVERSARY_HORIZON shape it\","
    );
    let _ = writeln!(s, "    \"policy\": \"crash-max-degree\",");
    let _ = writeln!(
        s,
        "    \"n\": {n},\n    \"min_alive\": {min_alive},\n    \"horizon_draws\": {horizon},\n    \"trials\": {trials},"
    );
    let mut first = true;
    for (key, curve) in [("ft_global_star", &ft), ("global_star", &plain)] {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        let _ = writeln!(s, "    \"{key}\": {{\n      \"rows\": [");
        for (i, p) in curve.iter().enumerate() {
            let comma = if i + 1 < curve.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{ \"rate_per_draw\": {:e}, \"mean_fraction_available\": {:.4} }}{comma}",
                p.rate, p.availability
            );
        }
        s.push_str("      ],\n");
        match detect_knee(curve) {
            Some(k) => {
                let _ = writeln!(
                    s,
                    "      \"knee\": {{ \"rate_per_draw\": {:e}, \"left_exponent\": {:.3}, \"right_exponent\": {:.3} }}",
                    k.rate, k.left.exponent, k.right.exponent
                );
            }
            None => {
                let _ = writeln!(s, "      \"knee\": null");
            }
        }
        let _ = write!(s, "    }}");
    }
    s.push_str("\n  }");
    s
}

/// The frontier record: bucket-engine runs at n ∈ {20k, 50k, 100k}.
/// ~15 minutes of single-core work — only under `NETCON_FRONTIER=1`.
fn scaling_frontier_section() -> String {
    let mut s = String::from("  \"scaling_frontier\": {\n");
    let _ = writeln!(
        s,
        "    \"note\": \"regenerate with NETCON_FRONTIER=1 cargo run --release -p netcon-bench --bin perf_smoke (~15 min); runs without that variable carry this section forward\","
    );
    let mut first = true;
    for (key, protocol, sparse) in [
        (
            "simple_global_line",
            simple_global_line::protocol(),
            simple_global_line::is_stable_sparse as fn(&SparsePop) -> bool,
        ),
        (
            "cycle_cover",
            cycle_cover::protocol(),
            cycle_cover::is_stable_sparse as fn(&SparsePop) -> bool,
        ),
    ] {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        let _ = writeln!(s, "    \"{key}\": [");
        let compiled = protocol.compile();
        for (i, n) in [20_000usize, 50_000, 100_000].into_iter().enumerate() {
            println!("==> frontier: {key} n = {n} (bucket engine)");
            let t0 = Instant::now();
            let mut sim = BucketSim::new(compiled.clone(), n, 2014 + n as u64);
            let out = sim.run_until(sparse, u64::MAX);
            let wall = t0.elapsed().as_secs_f64();
            let converged = out
                .converged_at()
                .unwrap_or_else(|| panic!("{key} did not stabilize at n={n}"));
            let mem = sim.approx_mem_bytes();
            assert!(mem < 100 << 20, "{key} n={n}: {mem} bytes >= 100 MB");
            let comma = if i < 2 { "," } else { "" };
            let _ = writeln!(
                s,
                "      {{ \"n\": {n}, \"engine\": \"bucket-sparse\", \"converged_at\": {converged}, \"effective_steps\": {}, \"wall_s\": {wall:.2}, \"approx_mem_bytes\": {mem}, \"event_mem_estimate_bytes\": {} }}{comma}",
                sim.effective_steps(),
                EventSim::<CompiledTable>::dense_mem_estimate(n),
            );
        }
        let _ = write!(s, "    ]");
    }
    s.push_str("\n  }");
    s
}

/// The million-node record: Simple-Global-Line at n = 10⁶ on the
/// bucket engine's batched-endgame path, with the frontier acceptance
/// gate asserted inline (≤ 60 s on one core). One serial run — the
/// bench box is single-core, and a gate racing other work would read
/// 10–60× slow — and only under `NETCON_MEGA_FRONTIER=1`.
fn mega_frontier_section() -> String {
    let n = 1_000_000usize;
    let compiled = simple_global_line::protocol().compile();
    let mut s = String::from("  \"mega_frontier\": {\n");
    let _ = writeln!(
        s,
        "    \"note\": \"regenerate with NETCON_MEGA_FRONTIER=1 cargo run --release -p netcon-bench --bin perf_smoke (one serial run, ~30 s; keep the box otherwise idle); runs without that variable carry this section forward\","
    );
    let _ = writeln!(s, "    \"gate\": \"wall_s <= 60 on one core\",");
    println!("==> mega frontier: simple_global_line n = {n} (bucket engine, batched endgame)");
    let t0 = Instant::now();
    let mut sim = BucketSim::new(compiled, n, 2014 + n as u64);
    // `run_until_edges`, not `run_until`: the edge-count predicate only
    // changes when an edge does, and that is the entry point where the
    // batched endgame engages (per-effective-step predicates cannot
    // batch — whole walker excursions would skip their evaluation
    // points, turning the last few walkers back into ~10¹¹ drawn
    // events and the 20 s record into minutes).
    let out = sim.run_until_edges(simple_global_line::is_stable_sparse, u64::MAX);
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        out.stabilized(),
        "simple_global_line did not stabilize at n={n}"
    );
    assert!(
        wall <= 60.0,
        "mega frontier gate: Simple-Global-Line n={n} took {wall:.1}s (> 60 s)"
    );
    // `converged_at()` saturates at u64::MAX here (~10¹⁹ sequential
    // draws); the wide counter holds the exact count.
    let _ = writeln!(
        s,
        "    \"simple_global_line\": [\n      {{ \"n\": {n}, \"engine\": \"bucket-sparse\", \"converged_at\": {}, \"effective_steps\": {}, \"wall_s\": {wall:.2}, \"approx_mem_bytes\": {} }}\n    ]",
        sim.steps_wide(),
        sim.effective_steps_wide(),
        sim.approx_mem_bytes(),
    );
    s.push_str("  }");
    s
}

fn main() {
    let (out_path, check_path) = {
        let mut args = std::env::args().skip(1);
        let mut out: Option<PathBuf> = None;
        let mut check: Option<PathBuf> = None;
        while let Some(a) = args.next() {
            if a == "--out" {
                out = Some(PathBuf::from(args.next().expect("--out requires a path")));
            } else if let Some(p) = a.strip_prefix("--out=") {
                out = Some(PathBuf::from(p));
            } else if a == "--check" {
                check = Some(PathBuf::from(args.next().expect("--check requires a path")));
            } else if let Some(p) = a.strip_prefix("--check=") {
                check = Some(PathBuf::from(p));
            } else {
                // Refuse rather than silently overwrite the committed
                // baseline on a typo.
                panic!("unrecognized argument {a:?}; usage: perf_smoke [--out <path>] [--check <baseline>]");
            }
        }
        (
            out.unwrap_or_else(|| {
                Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR10.json")
            }),
            check,
        )
    };
    let scale_pct = std::env::var("NETCON_BENCH_SCALE").unwrap_or_else(|_| "100".into());
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let bench_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("benches");

    // Warm build so compilation never lands inside a target's wall-clock
    // (a cold CI cache would otherwise trip the regression gate).
    println!("==> cargo bench --no-run (warm build, untimed)");
    let status = Command::new(&cargo)
        .args(["bench", "-p", "netcon-bench", "--no-run"])
        .status()
        .expect("failed to spawn cargo bench --no-run");
    assert!(status.success(), "bench warm build failed");

    let mut rows = Vec::new();
    for name in bench_targets(&bench_dir) {
        println!("==> cargo bench --bench {name}");
        let t0 = Instant::now();
        let status = Command::new(&cargo)
            .args(["bench", "-p", "netcon-bench", "--bench", &name])
            .status()
            .expect("failed to spawn cargo bench");
        let wall = t0.elapsed().as_secs_f64();
        assert!(status.success(), "bench target {name} failed");
        rows.push((name, wall));
    }

    // Engine record for the line constructors: event side at ≥ 100
    // trials, naive side capped (~1 s per trial for Simple at n = 256).
    // The `engine_speedup` bench target above already ran the same
    // comparison to *assert* the ≥ 50× acceptance bar; this re-measures
    // in-process so the JSON carries first-party numbers — the ~20 s of
    // duplication is accepted for the independence of gate and record.
    println!("==> engine comparison (n = 256 line constructors)");
    let simple = compare_engines(
        &simple_global_line::protocol(),
        simple_global_line::is_stable,
        256,
        scale(200).max(100),
        scale(8).clamp(2, 16),
        9,
    );
    let fast = compare_engines(
        &fast_global_line::protocol(),
        fast_global_line::is_stable,
        256,
        scale(200).max(100),
        scale(20).clamp(2, 40),
        9,
    );

    println!("==> engine memory ladder + bucket engine record");
    let memory_section = engine_memory_section();
    let bucket_section = bucket_engine_section(scale(200).max(100));

    // The naive floor is 8 trials (~0.8 s each): converged_at's ~70%
    // relative sd would otherwise turn the record's mean_rel_diff into
    // pure small-sample noise.
    println!("==> round engine comparison (n = 256, ShuffledRounds)");
    let (round_section, round_speedup) =
        round_engine_section(scale(100).max(50), scale(16).clamp(8, 24));

    // Expensive sections carry forward from the output file, or — when
    // writing somewhere fresh, as CI's bench-smoke does — from the
    // --check baseline, so the uploaded artifact keeps the records.
    let carry = |key: &str| {
        carry_forward_section(&out_path, key)
            .or_else(|| check_path.as_deref().and_then(|p| carry_forward_section(p, key)))
    };
    let frontier = if std::env::var("NETCON_FRONTIER").is_ok_and(|v| v == "1") {
        Some(scaling_frontier_section())
    } else {
        carry("scaling_frontier")
    };
    let round_frontier = if std::env::var("NETCON_ROUND_FRONTIER").is_ok_and(|v| v == "1") {
        Some(round_frontier_section())
    } else {
        carry("round_frontier")
    };
    let mega_frontier = if std::env::var("NETCON_MEGA_FRONTIER").is_ok_and(|v| v == "1") {
        Some(mega_frontier_section())
    } else {
        carry("mega_frontier")
    };

    // Large-sample mean-agreement record. `NETCON_NAIVE_TRIALS_256=<k>`
    // (k ≥ 100; ≈ 25 min at 1000) regenerates it; otherwise any section
    // already present in the output file is carried forward, so quick
    // re-runs don't destroy the expensive record.
    let ref_trials: usize = std::env::var("NETCON_NAIVE_TRIALS_256")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let large_sample = if ref_trials >= 100 {
        println!("==> large-sample agreement ({ref_trials} naive trials at n = 256)");
        let ls = compare_engines(
            &simple_global_line::protocol(),
            simple_global_line::is_stable,
            256,
            2_000,
            ref_trials,
            9,
        );
        // Fast-Global-Line's converged_at variance is ~50× smaller, so
        // 400 naive trials already put the standard error near 0.1%.
        let lf = compare_engines(
            &fast_global_line::protocol(),
            fast_global_line::is_stable,
            256,
            2_000,
            ref_trials.min(400),
            9,
        );
        let mut s = String::new();
        s.push_str("  \"large_sample_agreement_n256\": {\n");
        let _ = writeln!(
            s,
            "    \"note\": \"regenerate with NETCON_NAIVE_TRIALS_256={ref_trials} cargo run --release -p netcon-bench --bin perf_smoke; runs without that variable carry this section forward\","
        );
        json_engine(&mut s, "simple_global_line", &ls);
        s.push_str(",\n");
        json_engine(&mut s, "fast_global_line", &lf);
        s.push_str("\n  }");
        Some(s)
    } else {
        carry("large_sample_agreement_n256")
    };

    println!("==> perturbation frontier (fault-layer repair sweeps)");
    let perturbation_section = perturbation_frontier_section();

    println!("==> churn frontier (availability under sustained Poisson churn)");
    let churn_section = churn_frontier_section();

    println!("==> adversary frontier (availability vs targeted strike rate)");
    let adversary_section = adversary_frontier_section();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 10,");
    let _ = writeln!(json, "  \"bench_scale_pct\": \"{scale_pct}\",");
    json.push_str("  \"benches\": [\n");
    for (i, (name, wall)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{name}\", \"wall_s\": {wall:.3} }}{comma}"
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"engine_speedup\": {\n");
    json_engine(&mut json, "simple_global_line_n256", &simple);
    json.push_str(",\n");
    json_engine(&mut json, "fast_global_line_n256", &fast);
    json.push_str("\n  },\n");
    json.push_str(&memory_section);
    json.push_str(",\n");
    json.push_str(&bucket_section);
    json.push_str(",\n");
    json.push_str(&round_section);
    json.push_str(",\n");
    json.push_str(&perturbation_section);
    json.push_str(",\n");
    json.push_str(&churn_section);
    json.push_str(",\n");
    json.push_str(&adversary_section);
    if let Some(section) = frontier {
        json.push_str(",\n");
        json.push_str(&section);
    }
    if let Some(section) = round_frontier {
        json.push_str(",\n");
        json.push_str(&section);
    }
    if let Some(section) = mega_frontier {
        json.push_str(",\n");
        json.push_str(&section);
    }
    if let Some(section) = large_sample {
        json.push_str(",\n");
        json.push_str(&section);
    }
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).expect("write the bench record JSON");
    println!(
        "\nwrote {} ({} bench targets; SGL n=256 uniform-event speedup {:.0}x, round-engine speedup {:.0}x)",
        out_path.display(),
        rows.len(),
        simple.speedup,
        round_speedup,
    );

    if let Some(baseline) = check_path {
        if let Err(msg) = check_against_baseline(&baseline, &scale_pct, &rows) {
            eprintln!("\nREGRESSION GATE FAILED\n{msg}");
            std::process::exit(1);
        }
        println!("regression gate passed");
    }
}
