//! Executes every bench target (not just compiles them) and writes
//! `BENCH_PR2.json`: per-bench wall-clock plus the event-vs-naive engine
//! record (effective/total step counts and the speedup figure) for the
//! line constructors — the seed of the repo's perf trajectory.
//!
//! ```sh
//! NETCON_BENCH_SCALE=1 cargo run --release -p netcon-bench --bin perf_smoke
//! ```
//!
//! `NETCON_BENCH_SCALE` (percent) is inherited by the spawned bench
//! processes and by the in-process engine measurement; CI uses the
//! minimum (1) so the whole suite stays in smoke-test territory. The
//! output path defaults to `BENCH_PR2.json` in the workspace root and can
//! be overridden with `--out <path>`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use netcon_bench::harness::scale;
use netcon_bench::speedup::{compare_engines, Comparison};
use netcon_protocols::{fast_global_line, simple_global_line};

fn bench_targets(bench_dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(bench_dir)
        .expect("crates/bench/benches exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_owned)
        })
        .collect();
    names.sort();
    names
}

/// Extracts the `large_sample_agreement_n256` object (key line through
/// its matching closing brace, no trailing comma/newline) from an
/// existing output file, so cheap re-runs preserve the expensive record.
fn carry_forward_section(out_path: &Path) -> Option<String> {
    let old = std::fs::read_to_string(out_path).ok()?;
    let start = old.find("\"large_sample_agreement_n256\"")?;
    let brace = start + old[start..].find('{')?;
    let mut depth = 0usize;
    for (i, ch) in old[brace..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(format!("  {}", &old[start..=brace + i]));
                }
            }
            _ => {}
        }
    }
    None
}

fn json_engine(out: &mut String, key: &str, c: &Comparison) {
    let _ = write!(
        out,
        "    \"{key}\": {{\n      \"n\": {},\n      \"event_trials\": {},\n      \"event_mean_converged_at\": {:.1},\n      \"event_mean_total_steps\": {:.1},\n      \"event_mean_effective_steps\": {:.1},\n      \"event_wall_s\": {:.4},\n      \"naive_trials\": {},\n      \"naive_mean_converged_at\": {:.1},\n      \"naive_wall_s\": {:.4},\n      \"speedup_per_trial\": {:.1},\n      \"mean_rel_diff\": {:.4}\n    }}",
        c.n,
        c.event.trials,
        c.event.mean_converged,
        c.event.mean_steps,
        c.event.mean_effective,
        c.event.wall_s,
        c.naive.trials,
        c.naive.mean_converged,
        c.naive.wall_s,
        c.speedup,
        c.mean_rel_diff,
    );
}

fn main() {
    let out_path = {
        let mut args = std::env::args().skip(1);
        let mut path: Option<PathBuf> = None;
        while let Some(a) = args.next() {
            if a == "--out" {
                path = Some(PathBuf::from(
                    args.next().expect("--out requires a path argument"),
                ));
            } else if let Some(p) = a.strip_prefix("--out=") {
                path = Some(PathBuf::from(p));
            } else {
                // Refuse rather than silently overwrite the committed
                // baseline on a typo.
                panic!("unrecognized argument {a:?}; usage: perf_smoke [--out <path>]");
            }
        }
        path.unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR2.json")
        })
    };
    let scale_pct = std::env::var("NETCON_BENCH_SCALE").unwrap_or_else(|_| "100".into());
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let bench_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("benches");

    let mut rows = Vec::new();
    for name in bench_targets(&bench_dir) {
        println!("==> cargo bench --bench {name}");
        let t0 = Instant::now();
        let status = Command::new(&cargo)
            .args(["bench", "-p", "netcon-bench", "--bench", &name])
            .status()
            .expect("failed to spawn cargo bench");
        let wall = t0.elapsed().as_secs_f64();
        assert!(status.success(), "bench target {name} failed");
        rows.push((name, wall));
    }

    // Engine record for the line constructors: event side at ≥ 100
    // trials, naive side capped (~1 s per trial for Simple at n = 256).
    // The `engine_speedup` bench target above already ran the same
    // comparison to *assert* the ≥ 50× acceptance bar; this re-measures
    // in-process so the JSON carries first-party numbers — the ~20 s of
    // duplication is accepted for the independence of gate and record.
    println!("==> engine comparison (n = 256 line constructors)");
    let simple = compare_engines(
        &simple_global_line::protocol(),
        simple_global_line::is_stable,
        256,
        scale(200).max(100),
        scale(8).clamp(2, 16),
        9,
    );
    let fast = compare_engines(
        &fast_global_line::protocol(),
        fast_global_line::is_stable,
        256,
        scale(200).max(100),
        scale(20).clamp(2, 40),
        9,
    );

    // Large-sample mean-agreement record. `NETCON_NAIVE_TRIALS_256=<k>`
    // (k ≥ 100; the committed baseline uses 1000, ≈ 25 min) regenerates
    // it; otherwise any section already present in the output file is
    // carried forward, so quick re-runs don't destroy the expensive
    // record.
    let ref_trials: usize = std::env::var("NETCON_NAIVE_TRIALS_256")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let large_sample = if ref_trials >= 100 {
        println!("==> large-sample agreement ({ref_trials} naive trials at n = 256)");
        let ls = compare_engines(
            &simple_global_line::protocol(),
            simple_global_line::is_stable,
            256,
            2_000,
            ref_trials,
            9,
        );
        // Fast-Global-Line's converged_at variance is ~50× smaller, so
        // 400 naive trials already put the standard error near 0.1%.
        let lf = compare_engines(
            &fast_global_line::protocol(),
            fast_global_line::is_stable,
            256,
            2_000,
            ref_trials.min(400),
            9,
        );
        let mut s = String::new();
        s.push_str("  \"large_sample_agreement_n256\": {\n");
        let _ = writeln!(
            s,
            "    \"note\": \"regenerate with NETCON_NAIVE_TRIALS_256={ref_trials} cargo run --release -p netcon-bench --bin perf_smoke; runs without that variable carry this section forward\","
        );
        json_engine(&mut s, "simple_global_line", &ls);
        s.push_str(",\n");
        json_engine(&mut s, "fast_global_line", &lf);
        s.push_str("\n  }");
        Some(s)
    } else {
        carry_forward_section(&out_path)
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 2,");
    let _ = writeln!(json, "  \"bench_scale_pct\": \"{scale_pct}\",");
    json.push_str("  \"benches\": [\n");
    for (i, (name, wall)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{name}\", \"wall_s\": {wall:.3} }}{comma}"
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"engine_speedup\": {\n");
    json_engine(&mut json, "simple_global_line_n256", &simple);
    json.push_str(",\n");
    json_engine(&mut json, "fast_global_line_n256", &fast);
    json.push_str("\n  }");
    if let Some(section) = large_sample {
        json.push_str(",\n");
        json.push_str(&section);
    }
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR2.json");
    println!(
        "\nwrote {} ({} bench targets; Simple-Global-Line n=256 speedup {:.0}x)",
        out_path.display(),
        rows.len(),
        simple.speedup
    );
}
