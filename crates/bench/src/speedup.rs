//! Fast-vs-naive engine comparison: the measurement behind the
//! `engine_speedup` bench target and the `perf_smoke` JSON record.

use std::time::Instant;

use netcon_core::seeds::derive2;
use netcon_core::{
    BucketSim, EventSim, Population, RoundSim, RuleProtocol, ShuffledRounds, Simulation,
    SparsePop, StateId,
};

/// Per-engine aggregates over a trial set.
#[derive(Debug, Clone, Copy)]
pub struct EngineStats {
    /// Trials run.
    pub trials: usize,
    /// Mean `converged_at` (the paper's sequential running time).
    pub mean_converged: f64,
    /// Sample variance of `converged_at`.
    pub var_converged: f64,
    /// Mean total steps at detection.
    pub mean_steps: f64,
    /// Mean effective interactions at detection.
    pub mean_effective: f64,
    /// Wall-clock for the whole trial set, seconds.
    pub wall_s: f64,
}

/// The head-to-head record for one protocol and population size.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Population size.
    pub n: usize,
    /// Event-driven engine aggregates.
    pub event: EngineStats,
    /// Naive engine aggregates (usually over a prefix of the same seeds —
    /// the naive loop is the reason this module exists).
    pub naive: EngineStats,
    /// Per-trial mean wall-clock ratio: naive / event.
    pub speedup: f64,
    /// `|mean_e − mean_n| / mean_n` on `converged_at`.
    pub mean_rel_diff: f64,
}

fn stats_of(samples: &[(f64, f64, f64)], wall_s: f64) -> EngineStats {
    let trials = samples.len();
    let tf = trials as f64;
    let mean = |i: usize| -> f64 {
        samples.iter().map(|s| [s.0, s.1, s.2][i]).sum::<f64>() / tf
    };
    let mean_converged = mean(0);
    let var_converged = if trials > 1 {
        samples
            .iter()
            .map(|s| (s.0 - mean_converged).powi(2))
            .sum::<f64>()
            / (tf - 1.0)
    } else {
        0.0
    };
    EngineStats {
        trials,
        mean_converged,
        var_converged,
        mean_steps: mean(1),
        mean_effective: mean(2),
        wall_s,
    }
}

/// Runs `event_trials` event-driven and `naive_trials` naive executions of
/// `protocol` to `stable` on `n` nodes, sharing the seed stream
/// (`derive2(base_seed, n, trial)`), and reports the head-to-head record.
///
/// # Panics
///
/// Panics if any trial fails to stabilize (the line constructors converge
/// with probability 1).
#[must_use]
pub fn compare_engines(
    protocol: &RuleProtocol,
    stable: fn(&Population<StateId>) -> bool,
    n: usize,
    event_trials: usize,
    naive_trials: usize,
    base_seed: u64,
) -> Comparison {
    let compiled = protocol.compile();
    let mut event_samples = Vec::with_capacity(event_trials);
    let t0 = Instant::now();
    for t in 0..event_trials {
        let mut sim = EventSim::new(compiled.clone(), n, derive2(base_seed, n as u64, t as u64));
        let out = sim.run_until(stable, u64::MAX);
        event_samples.push((
            out.converged_at().expect("stabilizes") as f64,
            sim.steps() as f64,
            sim.effective_steps() as f64,
        ));
    }
    let event = stats_of(&event_samples, t0.elapsed().as_secs_f64());

    let mut naive_samples = Vec::with_capacity(naive_trials);
    let t0 = Instant::now();
    for t in 0..naive_trials {
        let mut sim =
            Simulation::new(protocol.clone(), n, derive2(base_seed, n as u64, t as u64));
        let out = sim.run_until(stable, u64::MAX);
        naive_samples.push((
            out.converged_at().expect("stabilizes") as f64,
            sim.steps() as f64,
            sim.effective_steps() as f64,
        ));
    }
    let naive = stats_of(&naive_samples, t0.elapsed().as_secs_f64());

    Comparison {
        n,
        speedup: (naive.wall_s / naive.trials as f64) / (event.wall_s / event.trials as f64),
        mean_rel_diff: (event.mean_converged - naive.mean_converged).abs()
            / naive.mean_converged,
        event,
        naive,
    }
}

/// The ShuffledRounds head-to-head record for one protocol and size:
/// the event-driven [`RoundSim`] against the naive round-playing loop,
/// with convergence read in draws *and* rounds.
#[derive(Debug, Clone, Copy)]
pub struct RoundComparison {
    /// Population size.
    pub n: usize,
    /// Event-driven round engine aggregates.
    pub round: EngineStats,
    /// Mean rounds to converge on the round engine.
    pub round_mean_rounds: f64,
    /// Naive ShuffledRounds aggregates.
    pub naive: EngineStats,
    /// Mean rounds to converge on the naive loop.
    pub naive_mean_rounds: f64,
    /// Per-trial mean wall-clock ratio: naive / round.
    pub speedup: f64,
    /// `|mean_r − mean_n| / mean_n` on `converged_at`.
    pub mean_rel_diff: f64,
}

/// Runs `round_trials` [`RoundSim`] and `naive_trials` naive
/// ShuffledRounds executions of `protocol` to `stable` on `n` nodes,
/// sharing the seed stream (`derive2(base_seed, n, trial)`), and reports
/// the head-to-head record — the ShuffledRounds counterpart of
/// [`compare_engines`].
///
/// # Panics
///
/// Panics if any trial fails to stabilize.
#[must_use]
pub fn compare_round_engines(
    protocol: &RuleProtocol,
    stable: fn(&Population<StateId>) -> bool,
    n: usize,
    round_trials: usize,
    naive_trials: usize,
    base_seed: u64,
) -> RoundComparison {
    let compiled = protocol.compile();
    let pairs_per_round = (n as u64) * (n as u64 - 1) / 2;
    let rounds_of = |converged: f64| (converged as u64).div_ceil(pairs_per_round) as f64;

    let mut round_samples = Vec::with_capacity(round_trials);
    let t0 = Instant::now();
    for t in 0..round_trials {
        let mut sim = RoundSim::new(compiled.clone(), n, derive2(base_seed, n as u64, t as u64));
        let out = sim.run_until(stable, u64::MAX);
        round_samples.push((
            out.converged_at().expect("stabilizes") as f64,
            sim.steps() as f64,
            sim.effective_steps() as f64,
        ));
    }
    let round = stats_of(&round_samples, t0.elapsed().as_secs_f64());
    let round_mean_rounds =
        round_samples.iter().map(|s| rounds_of(s.0)).sum::<f64>() / round_trials as f64;

    let mut naive_samples = Vec::with_capacity(naive_trials);
    let t0 = Instant::now();
    for t in 0..naive_trials {
        let mut sim = Simulation::with_scheduler(
            protocol.clone(),
            n,
            derive2(base_seed, n as u64, t as u64),
            ShuffledRounds::new(),
        );
        let out = sim.run_until(stable, u64::MAX);
        naive_samples.push((
            out.converged_at().expect("stabilizes") as f64,
            sim.steps() as f64,
            sim.effective_steps() as f64,
        ));
    }
    let naive = stats_of(&naive_samples, t0.elapsed().as_secs_f64());
    let naive_mean_rounds =
        naive_samples.iter().map(|s| rounds_of(s.0)).sum::<f64>() / naive_trials as f64;

    RoundComparison {
        n,
        speedup: (naive.wall_s / naive.trials as f64) / (round.wall_s / round.trials as f64),
        mean_rel_diff: (round.mean_converged - naive.mean_converged).abs()
            / naive.mean_converged,
        round,
        round_mean_rounds,
        naive,
        naive_mean_rounds,
    }
}

/// The sparse bucket engine's side of the record: per-trial aggregates
/// plus the engine's measured heap footprint
/// ([`BucketSim::approx_mem_bytes`]) after the last trial.
///
/// # Panics
///
/// Panics if any trial fails to stabilize.
#[must_use]
pub fn bucket_stats(
    protocol: &RuleProtocol,
    sparse_stable: fn(&SparsePop) -> bool,
    n: usize,
    trials: usize,
    base_seed: u64,
) -> (EngineStats, u64) {
    let compiled = protocol.compile();
    let mut samples = Vec::with_capacity(trials);
    let mut mem = 0u64;
    let t0 = Instant::now();
    for t in 0..trials {
        let mut sim = BucketSim::new(compiled.clone(), n, derive2(base_seed, n as u64, t as u64));
        let out = sim.run_until(sparse_stable, u64::MAX);
        samples.push((
            out.converged_at().expect("stabilizes") as f64,
            sim.steps() as f64,
            sim.effective_steps() as f64,
        ));
        mem = sim.approx_mem_bytes();
    }
    (stats_of(&samples, t0.elapsed().as_secs_f64()), mem)
}
