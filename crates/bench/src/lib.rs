//! Benchmark harness support: shared helpers for the table- and
//! figure-regeneration benches (see the `benches/` directory and
//! EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod speedup;
