//! Common measurement helpers for the bench targets.

use netcon_analysis::fit::{fit_power_law, fit_power_law_log_corrected, PowerLawFit};
use netcon_analysis::sweep::SweepTable;

/// Formats a fitted exponent with its R².
#[must_use]
pub fn fmt_fit(fit: &PowerLawFit) -> String {
    format!("{:.2} (R²={:.3})", fit.exponent, fit.r_squared)
}

/// Renders the standard per-size block of a sweep: `n`, mean steps, 95%
/// CI, and mean/n² (a useful at-a-glance normalizer for the Θ(n²)-class
/// rows).
#[must_use]
pub fn sweep_rows(table: &SweepTable) -> Vec<Vec<String>> {
    table
        .rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.0}", r.summary.mean),
                format!("±{:.0}", r.summary.ci95()),
                format!("{:.2}", r.summary.mean / (r.n * r.n) as f64),
            ]
        })
        .collect()
}

/// Both fits (raw and log-corrected) for a sweep.
#[must_use]
pub fn fits(table: &SweepTable) -> (PowerLawFit, PowerLawFit) {
    let pts = table.points();
    (fit_power_law(&pts), fit_power_law_log_corrected(&pts))
}

/// Reads `NETCON_BENCH_SCALE` (percent, default 100) so CI can run the
/// benches quickly while full runs keep paper-grade sample counts.
#[must_use]
pub fn scale(trials: usize) -> usize {
    let pct: usize = std::env::var("NETCON_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    (trials * pct / 100).max(2)
}
