//! Criterion micro-benchmarks of the simulation engines' hot paths:
//! naive interaction throughput (interpreted vs compiled rule tables),
//! event-driven candidate throughput, predicate-check cost, and a full
//! run on each engine.

use criterion::{criterion_group, criterion_main, Criterion};
use netcon_core::{EventSim, Simulation};
use netcon_graph::properties::is_spanning_star;
use netcon_protocols::{global_star, simple_global_line};
use std::hint::black_box;

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");

    group.bench_function("step_flat_star_n256", |b| {
        let mut sim = Simulation::new(global_star::protocol(), 256, 1);
        b.iter(|| black_box(sim.step()));
    });

    group.bench_function("step_compiled_star_n256", |b| {
        let mut sim = Simulation::new(global_star::protocol().compile(), 256, 1);
        b.iter(|| black_box(sim.step()));
    });

    group.bench_function("step_flat_line_n256", |b| {
        let mut sim = Simulation::new(simple_global_line::protocol(), 256, 1);
        b.iter(|| black_box(sim.step()));
    });

    group.bench_function("event_advance_line_n256", |b| {
        // Candidate interactions (each one covers a whole geometric run
        // of skipped draws); recreate the sim when it converges.
        let mut sim = EventSim::new(simple_global_line::protocol().compile(), 256, 1);
        let mut reseed = 2u64;
        b.iter(|| {
            if sim.is_quiescent() {
                sim = EventSim::new(simple_global_line::protocol().compile(), 256, reseed);
                reseed += 1;
            }
            black_box(sim.advance(u64::MAX))
        });
    });

    group.bench_function("event_advance_bucket_line_n4096", |b| {
        // The sparse engine's candidate throughput at a size the dense
        // pair map would already pay ~70 MB for.
        use netcon_core::BucketSim;
        let mut sim = BucketSim::new(simple_global_line::protocol().compile(), 4096, 1);
        let mut reseed = 2u64;
        b.iter(|| {
            if sim.is_quiescent() {
                sim = BucketSim::new(simple_global_line::protocol().compile(), 4096, reseed);
                reseed += 1;
            }
            black_box(sim.advance(u64::MAX))
        });
    });

    group.bench_function("event_advance_scanning_line_n1024", |b| {
        // Scanning-mode maintenance: the observed-state registry prunes
        // the per-node rescan to word-parallel bitset work (PR 3); before
        // it, every candidate cost ~2n live `can_affect` queries.
        let mut sim = EventSim::new_scanning(simple_global_line::protocol(), 1024, 1);
        let mut reseed = 2u64;
        b.iter(|| {
            if sim.is_quiescent() {
                sim = EventSim::new_scanning(simple_global_line::protocol(), 1024, reseed);
                reseed += 1;
            }
            black_box(sim.advance(u64::MAX))
        });
    });

    group.bench_function("star_predicate_n256", |b| {
        let mut sim = Simulation::new(global_star::protocol(), 256, 1);
        sim.run_for(100_000);
        b.iter(|| black_box(is_spanning_star(sim.population().edges())));
    });

    group.bench_function("full_star_run_n64", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(global_star::protocol(), 64, 7);
            black_box(sim.run_until(global_star::is_stable, u64::MAX))
        });
    });

    group.bench_function("full_star_run_event_n64", |b| {
        b.iter(|| {
            let mut sim = EventSim::new(global_star::protocol().compile(), 64, 7);
            black_box(sim.run_until(global_star::is_stable, u64::MAX))
        });
    });

    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
