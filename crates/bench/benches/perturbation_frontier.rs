//! **Perturbation frontier** — self-repair sweeps over the fault layer:
//! stabilize, injure with a seeded [`FaultSeverity`] burst, and measure
//! the steps back to stability (`netcon_analysis::repair`).
//!
//! Two workloads, chosen for opposite honesty:
//!
//! 1. *Maximum-Matching* under the mixed severity from
//!    `NETCON_FAULT_SEVERITY` (`"crashes,arrivals,edge_deletions"`,
//!    default `1,1,1`) — the matching process reconverges under **any**
//!    mix of damage (widowed partners are terminal, fresh nodes pair
//!    up), so it is the workload that can absorb whatever the knob says.
//! 2. *Global-Star* under fixed spoke deletions (`0,0,2`) — the paper's
//!    introduction protocol genuinely self-repairs this damage
//!    (`(c, p, 0) → (c, p, 1)` re-fires per orphaned peripheral), giving
//!    a positive repair-time curve with a physical meaning.
//!
//! `NETCON_FAULT_TRIALS` overrides the trial count (default rides
//! `NETCON_BENCH_SCALE` like every other target).

use netcon_analysis::repair::{sweep_repair_time, FaultSeverity};
use netcon_analysis::sweep::{SweepConfig, SweepTable};
use netcon_bench::harness::scale;
use netcon_core::{Link, ProtocolBuilder, RuleProtocol};
use netcon_protocols::global_star;

fn matching_protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("matching");
    let a = b.state("a");
    let m = b.state("b");
    b.rule((a, a, Link::Off), (m, m, Link::On));
    b.build().expect("valid")
}

/// The burst severity from `NETCON_FAULT_SEVERITY`, default `1,1,1`.
fn severity_from_env() -> FaultSeverity {
    match std::env::var("NETCON_FAULT_SEVERITY") {
        Ok(s) => FaultSeverity::parse(&s)
            .unwrap_or_else(|e| panic!("invalid NETCON_FAULT_SEVERITY: {e}")),
        Err(_) => FaultSeverity::default(),
    }
}

/// Trials per size: `NETCON_FAULT_TRIALS`, else bench-scaled.
fn trials_from_env() -> usize {
    std::env::var("NETCON_FAULT_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| scale(40).max(4))
}

fn report(name: &str, severity: FaultSeverity, table: &SweepTable) {
    println!(
        "{name} (severity {}c/{}a/{}d):",
        severity.crashes, severity.arrivals, severity.edge_deletions
    );
    for row in &table.rows {
        println!(
            "  n={:>4}: mean repair {:>10.1} steps (sd {:>10.1}, median {:>8.1}, max {:>10.0}, {} trials)",
            row.n,
            row.summary.mean,
            row.summary.std_dev,
            row.summary.median,
            row.summary.max,
            row.summary.count
        );
    }
    println!();
}

fn main() {
    println!("=== Perturbation frontier: repair-time sweeps over the fault layer ===\n");
    let trials = trials_from_env();
    let severity = severity_from_env();

    // Odd sizes on purpose: a stabilized odd-n matching keeps exactly
    // one unmatched survivor, so the default burst's single arrival has
    // a partner to find and the repair column is non-degenerate.
    let cfg = SweepConfig {
        sizes: vec![25, 49],
        trials,
        base_seed: 41,
    };
    let matching = sweep_repair_time(
        &cfg,
        &matching_protocol(),
        severity,
        |v, fs| {
            (0..v.n())
                .filter(|&u| fs.is_alive(u) && v.state_index(u) == 0)
                .count()
                <= 1
        },
        1_000_000_000,
    );
    report("maximum-matching", severity, &matching);

    let spokes = FaultSeverity {
        crashes: 0,
        arrivals: 0,
        edge_deletions: 2,
    };
    let star = sweep_repair_time(
        &cfg,
        &global_star::protocol(),
        spokes,
        global_star::is_stable_faulted,
        1_000_000_000,
    );
    report("global-star", spokes, &star);
    // The star must actually repair: two deleted spokes re-fire at least
    // two attachment rules, so every trial's repair time is positive.
    for row in &star.rows {
        assert!(
            row.samples.iter().all(|&r| r > 0.0),
            "global-star must regrow deleted spokes (n={})",
            row.n
        );
    }
    println!("star spoke-regrowth positive on every trial — self-repair confirmed");
}
