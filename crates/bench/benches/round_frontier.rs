//! **Round frontier** — parallel time in ShuffledRounds rounds at sizes
//! the naive round-player cannot touch.
//!
//! The polylogarithmic-parallel-time line of work (Connor, Michail &
//! Spirakis, arXiv:2007.00625) measures constructors in *rounds* of a
//! box schedule rather than sequential draws. The naive loop pays
//! Θ(n²) per round (the shuffle alone), so round-denominated sweeps were
//! stuck at small n; [`RoundSim`](netcon_core::RoundSim) runs the same
//! distribution at event-driven cost. This bench:
//!
//! 1. cross-checks the scheduler-aware selector
//!    ([`Engine::auto_for`](netcon_core::Engine::auto_for)) against the
//!    round engine's memory estimate,
//! 2. head-to-heads `RoundSim` against the naive ShuffledRounds loop on
//!    Simple-Global-Line (mean rounds must agree — the exactness smoke
//!    check riding every CI bench run),
//! 3. drives a rounds-to-converge ladder via the
//!    `netcon_analysis::sweep::sweep_rounds_to_converge` fast path and
//!    fits the rounds-vs-n power law,
//! 4. runs a round-denominated sweep at n = 100 000 on the sparse round
//!    engine ([`RoundBucketSim`](netcon_core::RoundBucketSim)) through
//!    the view-predicate path — the size the dense engine's 13n² bytes
//!    can never touch.
//!
//! `NETCON_BENCH_SCALE` (percent) scales trial counts as usual.

use std::time::Instant;

use netcon_analysis::sweep::{
    sweep_rounds_to_converge, sweep_rounds_to_converge_view, SweepConfig,
};
use netcon_analysis::table::TextTable;
use netcon_bench::harness::{fits, fmt_fit, scale, sweep_rows};
use netcon_core::seeds::derive2;
use netcon_core::{
    CompiledTable, Engine, EnumerableMachine, Link, ProtocolBuilder, RoundSim, SchedulerKind,
    ShuffledRounds, Simulation,
};
use netcon_protocols::{cycle_cover, simple_global_line};

fn main() {
    println!("=== Round frontier: event-driven ShuffledRounds (RoundSim) ===\n");

    // Selector cross-check: ShuffledRounds routes to the round engine
    // exactly when its (≈ 3× dense) estimate fits the budget.
    let n0 = 256;
    let eng = Engine::auto_for(
        simple_global_line::protocol().compile(),
        n0,
        1,
        SchedulerKind::ShuffledRounds,
    );
    let round_fits = RoundSim::<CompiledTable>::dense_mem_estimate(n0)
        <= Engine::<CompiledTable>::default_budget();
    assert_eq!(
        eng.kind() == "round-dense",
        round_fits,
        "selector disagrees with the round-engine budget"
    );
    println!("Engine::auto_for(n = {n0}, ShuffledRounds) -> {}", eng.kind());
    drop(eng);

    // And the sparse side of the same cross-check: beyond the dense
    // round-engine budget the selector must pick the sparse round
    // engine, never a fallback loop. A budget of one byte forces it at
    // any n; a frontier n forces it under the default budget.
    let eng = Engine::with_budget_for(
        simple_global_line::protocol().compile(),
        n0,
        1,
        1,
        SchedulerKind::ShuffledRounds,
    );
    assert_eq!(eng.kind(), "round-sparse", "tiny budget must go sparse");
    drop(eng);
    let n_big = 100_000;
    let eng = Engine::auto_for(
        simple_global_line::protocol().compile(),
        n_big,
        1,
        SchedulerKind::ShuffledRounds,
    );
    assert!(
        RoundSim::<CompiledTable>::dense_mem_estimate(n_big)
            > Engine::<CompiledTable>::default_budget(),
        "n = {n_big} should be beyond the dense round budget"
    );
    assert_eq!(eng.kind(), "round-sparse", "frontier n must go sparse");
    println!("Engine::auto_for(n = {n_big}, ShuffledRounds) -> {}\n", eng.kind());
    drop(eng);

    // Head-to-head on Simple-Global-Line at n = 64: RoundSim vs the
    // naive round-player, mean rounds-to-converge per engine. The means
    // must agree (the engines are distribution-identical); the wall gap
    // is the point of the engine.
    let n = 64;
    let trials = scale(20).max(2) as u64;
    let p = simple_global_line::protocol();
    let compiled = p.compile();
    let m = (n as u64) * (n as u64 - 1) / 2;

    let t0 = Instant::now();
    let mut round_rounds = 0.0f64;
    for t in 0..trials {
        let mut sim = RoundSim::new(compiled.clone(), n, derive2(7, n as u64, t));
        let out = sim.run_until(simple_global_line::is_stable, u64::MAX);
        round_rounds +=
            out.converged_at().expect("stabilizes").div_ceil(m) as f64 / trials as f64;
    }
    let round_wall = t0.elapsed().as_secs_f64();

    let naive_trials = scale(4).clamp(2, 8) as u64;
    let t0 = Instant::now();
    let mut naive_rounds = 0.0f64;
    for t in 0..naive_trials {
        let mut sim = Simulation::with_scheduler(
            p.clone(),
            n,
            derive2(7, n as u64, t),
            ShuffledRounds::new(),
        );
        let out = sim.run_until(simple_global_line::is_stable, u64::MAX);
        naive_rounds +=
            out.converged_at().expect("stabilizes").div_ceil(m) as f64 / naive_trials as f64;
    }
    let naive_wall = t0.elapsed().as_secs_f64();

    let speedup =
        (naive_wall / naive_trials as f64) / (round_wall / trials as f64).max(1e-12);
    let mut t = TextTable::new(&["engine", "trials", "mean rounds", "wall/trial"]);
    t.row(&[
        "RoundSim",
        &trials.to_string(),
        &format!("{round_rounds:.1}"),
        &format!("{:.4}s", round_wall / trials as f64),
    ]);
    t.row(&[
        "naive ShuffledRounds",
        &naive_trials.to_string(),
        &format!("{naive_rounds:.1}"),
        &format!("{:.4}s", naive_wall / naive_trials as f64),
    ]);
    println!("--- Simple-Global-Line n = {n}: RoundSim vs naive ({speedup:.0}x/trial) ---");
    println!("{}", t.render());
    let rel = (round_rounds - naive_rounds).abs() / naive_rounds.max(1.0);
    assert!(
        rel < 0.5,
        "mean rounds diverge: round {round_rounds:.1} vs naive {naive_rounds:.1} \
         ({rel:.2} relative at {trials}/{naive_trials} trials)"
    );

    // Rounds-to-converge ladder on the analysis fast path.
    for (name, protocol, stable) in [
        (
            "Simple-Global-Line (Protocol 1)",
            simple_global_line::protocol(),
            simple_global_line::is_stable as fn(&_) -> bool,
        ),
        (
            "Cycle-Cover (Protocol 3)",
            cycle_cover::protocol(),
            cycle_cover::is_stable as fn(&_) -> bool,
        ),
    ] {
        let cfg = SweepConfig {
            sizes: vec![16, 24, 32, 48],
            trials: scale(30).max(3),
            base_seed: 2007,
        };
        let table = sweep_rounds_to_converge(&cfg, &protocol, stable, u64::MAX);
        let (fit, fit_log) = fits(&table);
        let mut t = TextTable::new(&["n", "mean rounds", "95% CI", "rounds/n²"]);
        for row in sweep_rows(&table) {
            t.row(&row.iter().map(String::as_str).collect::<Vec<_>>());
        }
        println!("--- {name}: rounds to converge ---");
        println!("{}", t.render());
        println!(
            "fitted rounds exponent: {} (log-corrected {})\n",
            fmt_fit(&fit),
            fmt_fit(&fit_log)
        );
    }

    // Frontier round sweep: n = 100 000 on the sparse round engine via
    // the view-predicate path (a dense predicate would materialize a
    // Θ(n²) Population per stability check). Maximum matching finishes
    // within round 1 almost surely under any box schedule, so the
    // measurement doubles as an exactness assertion at frontier scale.
    let mut b = ProtocolBuilder::new("matching");
    let a = b.state("a");
    let m_state = b.state("b");
    b.rule((a, a, Link::Off), (m_state, m_state, Link::On));
    let matching = b.build().expect("valid");
    let ai = matching.compile().state_index(&a);
    let n_big = 100_000;
    let trials = scale(4).max(1);
    let cfg = SweepConfig {
        sizes: vec![n_big],
        trials,
        base_seed: 606,
    };
    let t0 = Instant::now();
    let table =
        sweep_rounds_to_converge_view(&cfg, &matching, |v| v.count_index(ai) <= 1, u64::MAX);
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        table.rows[0].samples.iter().all(|&x| x == 1.0),
        "matching must finish in round 1 at n = {n_big}: {:?}",
        table.rows[0].samples
    );
    println!("--- Maximum-matching at n = {n_big}: sparse round engine ---");
    println!(
        "{trials} trial(s), all converged in round 1, {:.3}s/trial\n",
        wall / trials as f64
    );

    println!("round-denominated sweeps now run at event-driven cost;");
    println!("the naive loop pays Θ(n²) per round for the shuffle alone,");
    println!("and the sparse round engine lifts the 13n²-byte ceiling.");
}
