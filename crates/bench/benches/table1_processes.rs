//! **Table 1** — expected convergence time of the seven fundamental
//! probabilistic processes (§3.3, Propositions 1–7).
//!
//! Regenerates the table: for each process, measured mean steps across a
//! ladder of `n`, the fitted log–log exponent (raw and after dividing out
//! `log n`), and the paper's Θ bound. The reproduction target is the
//! *shape*: exponents ≈ 1 for the Θ(n log n) rows and ≈ 2 for the
//! Θ(n²)/Θ(n² log n) rows, with the log-corrected fit closer to the
//! integer than the raw fit exactly when the bound carries a log factor.

use netcon_analysis::sweep::{sweep, SweepConfig};
use netcon_analysis::table::TextTable;
use netcon_bench::harness::{fits, fmt_fit, scale};
use netcon_processes::Process;

fn main() {
    let sizes = vec![32, 48, 64, 96, 128, 192];
    let trials = scale(25);
    println!("=== Table 1: fundamental probabilistic processes ===");
    println!("sizes {sizes:?}, {trials} trials per size\n");

    let mut table = TextTable::new(&[
        "process",
        "paper",
        "fit n^k",
        "fit n^k·log n",
        "mean @ n=128",
    ]);
    for p in Process::all() {
        let cfg = SweepConfig {
            sizes: sizes.clone(),
            trials,
            base_seed: 1,
        };
        let t = sweep(&cfg, |n, seed| p.measure(n, seed) as f64);
        let (raw, corrected) = fits(&t);
        let at128 = t
            .rows
            .iter()
            .find(|r| r.n == 128)
            .map_or(String::from("—"), |r| format!("{:.0}", r.summary.mean));
        table.row(&[
            p.name(),
            p.theory(),
            &fmt_fit(&raw),
            &fmt_fit(&corrected),
            &at128,
        ]);
    }
    println!("{}", table.render());
    println!("expected: epidemic/one-to-all/node-cover ≈ n¹·log n;");
    println!("          one-to-one/matching ≈ n²; meet-everybody/edge-cover ≈ n²·log n");
}
