//! **Figure 6** — addressing the useful space: interaction cost of
//! drawing each `D`-edge through token walks and marked-pair coin flips,
//! per pair and per sweep, as the useful space grows.

use netcon_core::Simulation;
use netcon_tm::decider::MinEdges;
use netcon_universal::constructor::{is_stable, leader_of, UniversalConstructor};

fn main() {
    println!("=== Fig. 6: drawing the useful space, cost per addressed edge ===\n");
    println!(
        "{:>3} {:>7} {:>12} {:>16} {:>18}",
        "m", "pairs", "steps", "steps per pair", "per pair / (2m)²"
    );
    for m in [2usize, 4, 6, 8, 10] {
        let trials = 6;
        let mut total = 0u64;
        for seed in 0..trials {
            // Always-accepting language: exactly one draw sweep.
            let lang = MinEdges::new("anything", |_| 0);
            let pop = UniversalConstructor::initial_population(m);
            let mut sim =
                Simulation::from_population(UniversalConstructor::new(Box::new(lang)), pop, seed);
            let out = sim.run_until(is_stable, u64::MAX);
            total += out.converged_at().expect("constructor stabilizes");
            assert_eq!(leader_of(sim.population()).expect("leader").rejections, 0);
        }
        let mean = total as f64 / f64::from(trials as u32);
        let pairs = (m * (m - 1) / 2) as f64;
        let n = (2 * m) as f64;
        println!(
            "{m:>3} {pairs:>7.0} {mean:>12.0} {:>16.0} {:>18.3}",
            mean / pairs,
            mean / pairs / (n * n)
        );
    }
    println!("\nper-pair cost grows like m·n² (token walk of Θ(m) hops, each a");
    println!("specific pair of Θ(n²) expected wait) — the last column ≈ c·m.");
}
