//! **Ablation** — scheduler sensitivity: the paper analyses expected time
//! under the uniform random scheduler only; correctness merely needs
//! fairness. This bench measures the same constructors under the
//! round-robin and shuffled-rounds fair schedulers to quantify how much
//! of the running time is coupon-collector slack that a "box" schedule
//! removes.

use netcon_analysis::stats::Summary;
use netcon_analysis::table::TextTable;
use netcon_bench::harness::scale;
use netcon_core::{
    Population, RoundRobin, RuleProtocol, Scheduler, ShuffledRounds, Simulation, StateId,
    Uniform,
};
use netcon_protocols::{cycle_cover, fast_global_line, global_star, spanning_net};

fn measure<S: Scheduler>(
    protocol: &RuleProtocol,
    stable: fn(&Population<StateId>) -> bool,
    n: usize,
    seed: u64,
    sched: S,
) -> f64 {
    let mut sim = Simulation::with_scheduler(protocol.clone(), n, seed, sched);
    sim.run_until(stable, u64::MAX)
        .converged_at()
        .expect("constructors stabilize under fair schedulers") as f64
}

type Entry = (&'static str, RuleProtocol, fn(&Population<StateId>) -> bool);

fn main() {
    let n = 48;
    let trials = scale(10) as u64;
    println!("=== Ablation: scheduler sensitivity (n = {n}, {trials} trials) ===\n");
    let entries: [Entry; 4] = [
        ("Global-Star", global_star::protocol(), global_star::is_stable),
        ("Cycle-Cover", cycle_cover::protocol(), cycle_cover::is_stable),
        (
            "Fast-Global-Line",
            fast_global_line::protocol(),
            fast_global_line::is_stable,
        ),
        (
            "Spanning-Net",
            spanning_net::protocol(),
            spanning_net::is_stable,
        ),
    ];
    let mut t = TextTable::new(&[
        "protocol",
        "uniform",
        "shuffled-rounds",
        "round-robin",
        "uniform/shuffled",
    ]);
    for (name, p, stable) in &entries {
        let mean = |f: &dyn Fn(u64) -> f64| {
            let xs: Vec<f64> = (0..trials).map(f).collect();
            Summary::of(&xs).mean
        };
        let uni = mean(&|s| measure(p, *stable, n, s, Uniform));
        let shuf = mean(&|s| measure(p, *stable, n, s, ShuffledRounds::new()));
        let rr = mean(&|s| measure(p, *stable, n, s, RoundRobin::new()));
        t.row(&[
            name,
            &format!("{uni:.0}"),
            &format!("{shuf:.0}"),
            &format!("{rr:.0}"),
            &format!("{:.2}", uni / shuf),
        ]);
    }
    println!("{}", t.render());
    println!("box schedules (every pair once per round) remove the uniform");
    println!("scheduler's coupon-collector tail; the ratio quantifies it.");
}
