//! **Figure 3** — the universal constructor's repeat-until-accept loop:
//! for each target language, the number of rejected draws before the
//! accepted one, against the theoretical `1/P[G(m,½) ∈ L]` expectation
//! (estimated by direct G(m,½) sampling).
//!
//! The universal machine's composite states are not dense-enumerable, so
//! this bench uses the event-driven engine's *scanning* mode
//! ([`EventSim::from_population_scanning`]): pair effectiveness is decided
//! by `can_affect` on the live states (exact for this machine), and the
//! token-walk phases — where only a handful of the Θ(n²) pairs are ever
//! effective — stop paying for the idle draws.

use netcon_core::EventSim;
use netcon_graph::gnp::gnp_half;
use netcon_graph::matrix::AdjMatrix;
use netcon_tm::decider::{Connected, GraphLanguage, MinEdges, TriangleFree};
use netcon_universal::constructor::{is_stable, leader_of, UniversalConstructor};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn accept_rate(lang: &dyn GraphLanguage, m: usize) -> f64 {
    let mut rng = SmallRng::seed_from_u64(99);
    let trials = 2000;
    let mut ok = 0;
    for _ in 0..trials {
        let g = gnp_half(m, &mut rng);
        if lang.accepts(&AdjMatrix::from(&g)) {
            ok += 1;
        }
    }
    ok as f64 / f64::from(trials)
}

fn mean_rejections(make: &dyn Fn() -> Box<dyn GraphLanguage + Send + Sync>, m: usize) -> (f64, f64) {
    let trials = 10;
    let mut rej = 0u32;
    let mut steps = 0u64;
    for seed in 0..trials {
        let pop = UniversalConstructor::initial_population(m);
        let mut sim =
            EventSim::from_population_scanning(UniversalConstructor::new(make()), pop, seed);
        let out = sim.run_until(is_stable, u64::MAX);
        steps += out.converged_at().expect("constructor stabilizes");
        rej += leader_of(sim.population()).expect("leader").rejections;
    }
    (f64::from(rej) / f64::from(trials as u32), steps as f64 / f64::from(trials as u32))
}

type LangFactory = Box<dyn Fn() -> Box<dyn GraphLanguage + Send + Sync>>;

fn main() {
    println!("=== Fig. 3: draw → decide → repeat-until-accept loop ===\n");
    println!(
        "{:<22} {:>3} {:>14} {:>16} {:>14}",
        "language", "m", "P[accept]", "E[rejects] thy", "rejects meas"
    );
    let langs: Vec<(&str, LangFactory)> = vec![
        ("connected", Box::new(|| Box::new(Connected))),
        ("triangle-free", Box::new(|| Box::new(TriangleFree))),
        (
            "≥45% density",
            Box::new(|| Box::new(MinEdges::new("dense", |n| n * (n - 1) * 45 / 200))),
        ),
    ];
    for (name, make) in &langs {
        for m in [4usize, 6] {
            let p = accept_rate(&*make(), m);
            let theory = if p > 0.0 { 1.0 / p - 1.0 } else { f64::INFINITY };
            let (meas, steps) = mean_rejections(make, m);
            println!(
                "{name:<22} {m:>3} {p:>14.3} {theory:>16.2} {meas:>14.2}   ({steps:.0} steps)"
            );
        }
    }
    println!("\nmeasured rejection counts should track (1-p)/p for each language.");
}
