//! **Adversary frontier** — availability-vs-rate ladders under the
//! adaptive targeted adversary (`netcon_core::fault::adversary`),
//! locating each constructor's availability *knee* with
//! `netcon_analysis::knee`.
//!
//! The workload is the paper's sharpest robustness contrast:
//!
//! 1. *Global-Star* — a random crash almost never hits the centre, but
//!    the adaptive `CrashMaxDegree` policy always does, and the
//!    all-peripheral remnant has no enabled rule: one strike ends the
//!    run's availability forever. Its curve decays like `1/(rate ·
//!    horizon)` — the measured cost of having no repair path.
//! 2. *FT-Global-Star* (arXiv 1903.05992) — crash notifications re-mint
//!    the widowed spokes as centre candidates, so the star re-elects
//!    after every strike and only the re-election windows are lost. Its
//!    knee is where the `min_alive` guardrail starts saturating the
//!    damage (the floor caps cumulative crashes, so past the knee the
//!    per-strike cost flattens) — the measured shape of *guardrailed*
//!    graceful degradation, against Global-Star's collapse knee.
//!
//! Degradation guardrails enforced on the measured curves: both ladders
//! monotone non-increasing (up to trial noise), FT-star at least as
//! available as Global-Star at every rung, and a detected knee on each.
//!
//! `NETCON_ADVERSARY_HORIZON` sets the draws per measurement (default
//! `40_000`); `NETCON_ADVERSARY_TRIALS` overrides the trials per rung
//! (default rides `NETCON_BENCH_SCALE` like every other target).

use netcon_analysis::knee::{
    detect_knee, monotone_nonincreasing, periodic_adversary_plan, sweep_availability_vs_rate,
    RatePoint,
};
use netcon_bench::harness::scale;
use netcon_core::AdversaryPolicy;
use netcon_protocols::{ft_star, global_star};

/// The strike-rate ladder: expected adversary decisions per draw, from
/// one strike per 40k draws to one per 1250. (Higher rates only shift
/// *when* the floor-capped strike budget is spent, not how much damage
/// lands, so the curves flatten — the ladder stops at the knee's far
/// side instead of measuring that plateau.)
const RATES: [f64; 6] = [2.5e-5, 5e-5, 1e-4, 2e-4, 4e-4, 8e-4];

/// Trials per rung: `NETCON_ADVERSARY_TRIALS`, else bench-scaled.
fn trials_from_env() -> usize {
    std::env::var("NETCON_ADVERSARY_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| scale(12).max(3))
}

/// Draws per measurement: `NETCON_ADVERSARY_HORIZON`, default 40k.
fn horizon_from_env() -> u64 {
    match std::env::var("NETCON_ADVERSARY_HORIZON") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|e| panic!("invalid NETCON_ADVERSARY_HORIZON {s:?}: {e}")),
        Err(_) => 40_000,
    }
}

fn report(name: &str, points: &[RatePoint]) {
    println!("{name}:");
    for p in points {
        println!(
            "  rate {:>8.1e}/draw: mean fraction available {:>6.3}",
            p.rate, p.availability
        );
        assert!(
            (0.0..=1.0).contains(&p.availability),
            "{name}: fraction {} out of range",
            p.availability
        );
    }
    match detect_knee(points) {
        Some(k) => println!(
            "  knee at rate {:.2e} (slopes {:.2} → {:.2})\n",
            k.rate, k.left.exponent, k.right.exponent
        ),
        None => println!("  no knee (ladder too short)\n"),
    }
}

fn main() {
    println!("=== Adversary frontier: availability vs targeted strike rate ===\n");
    let trials = trials_from_env();
    let horizon = horizon_from_env();
    let n = 16;
    // Repair budget after the stream: generous for FT-star (re-elects in
    // Θ(n² log n)), finite so frozen Global-Star remnants report
    // `repair: None` instead of running forever.
    let max_steps = 400_000;
    let plan = |rate: f64, seed: u64, _n: usize| {
        periodic_adversary_plan(rate, seed, horizon, &[AdversaryPolicy::CrashMaxDegree], 8)
    };

    let ft = sweep_availability_vs_rate(
        &ft_star::protocol(),
        n,
        &RATES,
        trials,
        131,
        plan,
        ft_star::is_stable_faulted,
        max_steps,
    );
    report("ft-global-star", &ft);

    let plain = sweep_availability_vs_rate(
        &global_star::protocol(),
        n,
        &RATES,
        trials,
        137,
        plan,
        global_star::is_stable_faulted,
        max_steps,
    );
    report("global-star", &plain);

    // Degradation guardrails: more adversary must never mean more
    // availability, and the notified re-election must dominate the
    // unrepairable baseline at every rung.
    assert!(
        monotone_nonincreasing(&ft, 0.08),
        "ft-star availability rose with the strike rate: {ft:?}"
    );
    assert!(
        monotone_nonincreasing(&plain, 0.08),
        "global-star availability rose with the strike rate: {plain:?}"
    );
    for (f, p) in ft.iter().zip(&plain) {
        assert!(
            f.availability + 0.02 >= p.availability,
            "FT-star less available than Global-Star at rate {:e}: {} vs {}",
            f.rate,
            f.availability,
            p.availability
        );
    }
    let knee = detect_knee(&ft).expect("6-rung ladder has a knee");
    assert!(
        knee.rate >= RATES[0] && knee.rate <= RATES[RATES.len() - 1],
        "knee inside the ladder: {knee:?}"
    );
    println!("guardrails hold: monotone curves, FT-star dominates, knee detected");
}
