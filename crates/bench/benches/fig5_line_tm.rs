//! **Figure 5** — TM head movement on a population line with `l`/`r`/`t`
//! marks: interaction cost of the orientation phase and of each simulated
//! TM step, against the reference interpreter's step count.

use netcon_core::{Population, Simulation};
use netcon_tm::machine::Tape;
use netcon_tm::machines::{bit_flipper, parity_machine, zigzag_machine};
use netcon_universal::line_tm::{oriented_line, unoriented_line, LineTm, Mode, NodeState};

fn halted(p: &Population<NodeState>) -> bool {
    p.states().iter().any(|s| {
        s.head
            .is_some_and(|h| matches!(h.mode, Mode::Accepted | Mode::Rejected | Mode::Fault))
    })
}

fn main() {
    println!("=== Fig. 5: TM simulation on a line ===\n");
    println!(
        "{:<12} {:>5} {:>9} {:>16} {:>18} {:>14}",
        "machine", "cells", "TM steps", "oriented interx", "unoriented interx", "interx/TM step"
    );
    for (tm, bits) in [
        (parity_machine(), vec![true, false, true, true, false, true]),
        (bit_flipper(), vec![true, false, true, false]),
        (zigzag_machine(), vec![true, true, false, true]),
    ] {
        let space = bits.len() + 2;
        // Reference step count.
        let mut tape = Tape::from_bits(&bits, space);
        let mut state = tm.start_state();
        let mut tm_steps = 0u64;
        loop {
            let (next, halt) = tm.step(state, &mut tape).expect("no stuck");
            tm_steps += 1;
            state = next;
            if halt != netcon_tm::machine::Halt::OutOfFuel {
                break;
            }
        }
        let mean = |pop_fn: &dyn Fn() -> Population<NodeState>| {
            let trials = 10;
            let mut total = 0u64;
            for seed in 0..trials {
                let mut sim = Simulation::from_population(LineTm::new(tm.clone()), pop_fn(), seed);
                sim.run_until(halted, u64::MAX);
                total += sim.steps();
            }
            total as f64 / f64::from(trials as u32)
        };
        let oriented = mean(&|| oriented_line(&tm, &bits, space));
        let unoriented = mean(&|| unoriented_line(&bits, space, space / 2));
        println!(
            "{:<12} {:>5} {:>9} {:>16.0} {:>18.0} {:>14.1}",
            tm.name(),
            space,
            tm_steps,
            oriented,
            unoriented,
            oriented / tm_steps as f64
        );
    }
    println!("\nEach TM step costs Θ(n²) expected interactions (the head must meet");
    println!("the right neighbour); the unoriented column adds Fig. 5's one-off");
    println!("orientation walk.");
}
