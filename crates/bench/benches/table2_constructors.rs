//! **Table 2** — the protocols: state counts (exact) and expected
//! convergence times (measured sweeps + log–log exponent fits) against
//! the paper's bounds.
//!
//! | protocol | paper states | paper time |
//! |----------|--------------|------------|
//! | Simple-Global-Line | 5 | Ω(n⁴), O(n⁵) |
//! | Fast-Global-Line | 9 | O(n³) |
//! | Cycle-Cover | 3 | Θ(n²) |
//! | Global-Star | 2 | Θ(n² log n) |
//! | Global-Ring | 10 | — (Ω(n²) lower bound) |
//! | 2RC | 6 | — |
//! | Spanning-Net (Thm 1) | 2 | Θ(n log n) |
//! | Graph-Replication | 12 | Θ(n⁴ log n) |

use netcon_analysis::sweep::{sweep, sweep_converged_at, SweepConfig};
use netcon_analysis::table::TextTable;
use netcon_bench::harness::{fits, fmt_fit, scale};
use netcon_core::{EventSim, Population, RuleProtocol, StateId};
use netcon_protocols::{
    catalog, cycle_cover, fast_global_line, global_ring, global_star, krc, replication,
    simple_global_line, spanning_net,
};

fn row(
    table: &mut TextTable,
    name: &str,
    paper: &str,
    protocol: RuleProtocol,
    stable: impl Fn(&Population<StateId>) -> bool + Sync,
    sizes: Vec<usize>,
    trials: usize,
) {
    let cfg = SweepConfig {
        sizes,
        trials,
        base_seed: 2,
    };
    // Event-driven path: identical step-count distribution, cost
    // proportional to effective interactions only.
    let t = sweep_converged_at(&cfg, &protocol, &stable, u64::MAX);
    let (raw, corrected) = fits(&t);
    let last = t.rows.last().expect("sizes non-empty");
    table.row(&[
        name,
        &protocol.size().to_string(),
        paper,
        &fmt_fit(&raw),
        &fmt_fit(&corrected),
        &format!("{:.0} @ n={}", last.summary.mean, last.n),
    ]);
}

fn main() {
    println!("=== Table 2: network constructors ===\n");

    println!("state counts (must equal the paper exactly):");
    let mut sizes_tbl = TextTable::new(&["protocol", "states (impl)", "states (paper)"]);
    for e in catalog::table2() {
        assert_eq!(e.protocol.size(), e.paper_states, "{}", e.name);
        sizes_tbl.row(&[
            e.name,
            &e.protocol.size().to_string(),
            &e.paper_states.to_string(),
        ]);
    }
    println!("{}", sizes_tbl.render());

    let trials = scale(12);
    let mut t = TextTable::new(&[
        "protocol",
        "states",
        "paper time",
        "fit n^k",
        "fit n^k·log n",
        "mean steps",
    ]);
    row(
        &mut t,
        "Simple-Global-Line",
        "Ω(n⁴), O(n⁵)",
        simple_global_line::protocol(),
        simple_global_line::is_stable,
        vec![8, 12, 16, 24, 32, 48],
        trials,
    );
    row(
        &mut t,
        "Fast-Global-Line",
        "O(n³)",
        fast_global_line::protocol(),
        fast_global_line::is_stable,
        vec![12, 16, 24, 32, 48, 64],
        trials,
    );
    row(
        &mut t,
        "Cycle-Cover",
        "Θ(n²)",
        cycle_cover::protocol(),
        cycle_cover::is_stable,
        vec![16, 32, 64, 96, 128],
        trials,
    );
    row(
        &mut t,
        "Global-Star",
        "Θ(n² log n)",
        global_star::protocol(),
        global_star::is_stable,
        vec![16, 32, 64, 96, 128],
        trials,
    );
    row(
        &mut t,
        "Global-Ring",
        "≥ Ω(n²)",
        global_ring::protocol(),
        global_ring::is_stable,
        vec![6, 8, 12, 16, 24],
        trials,
    );
    // 2RC has no time analysis in the paper, and its measured endgame
    // (leader-driven rewiring to merge the last two cycles) is very slow;
    // keep the ladder small so the bench stays bounded.
    row(
        &mut t,
        "2RC",
        "≥ Ω(n log n)",
        krc::protocol(2),
        |p| krc::is_stable(p, 2),
        vec![5, 6, 8, 10, 12],
        trials,
    );
    row(
        &mut t,
        "Spanning-Net (Thm 1)",
        "Θ(n log n)",
        spanning_net::protocol(),
        spanning_net::is_stable,
        vec![32, 64, 128, 192, 256],
        trials,
    );
    println!("{}", t.render());

    // Graph-Replication needs its custom initial configuration: input =
    // ring on n/2 nodes, replica space = n/2.
    let cfg = SweepConfig {
        sizes: vec![6, 8, 10, 12, 14],
        trials,
        base_seed: 3,
    };
    let compiled = replication::protocol().compile();
    let t = sweep(&cfg, |n, seed| {
        let n1 = n / 2;
        let g1 = netcon_graph::EdgeSet::from_edges(n1, (0..n1).map(|i| (i, (i + 1) % n1)));
        let pop = replication::initial_population(&g1, n - n1);
        let mut sim = EventSim::from_population(compiled.clone(), pop, seed);
        sim.run_until(replication::is_stable, u64::MAX)
            .last_effective()
            .expect("replication stabilizes") as f64
    });
    let (raw, corrected) = fits(&t);
    println!(
        "Graph-Replication (ring input, n = |V1|+|V2|): paper Θ(n⁴ log n); fit n^k {} / n^k·log n {}",
        fmt_fit(&raw),
        fmt_fit(&corrected)
    );
    for r in &t.rows {
        println!("  n={:<3} mean {:>10.0} ±{:>8.0}", r.n, r.summary.mean, r.summary.ci95());
    }
}
