//! **Engine speedup** — the event-driven engine against the naive loop on
//! the spanning-line constructors, same seeds, release wall-clock.
//!
//! Two claims are checked and printed:
//!
//! 1. *Speed*: at n = 256, `EventSim` on Simple-Global-Line is orders of
//!    magnitude faster per trial than `Simulation` (the PR-2 acceptance
//!    bar is ≥ 50×) — the Θ(n⁴) running time is almost entirely skipped
//!    ineffective draws.
//! 2. *Exactness*: the two engines' mean `converged_at` agree within a
//!    few percent. The naive engine is too slow for a large trial count
//!    at n = 256, so the tight (≥ 100 ×100 trials) agreement check runs
//!    at n = 64 and the n = 256 check uses the naive trials available.
//!
//! `NETCON_BENCH_SCALE` (percent) shrinks trial counts as usual; the
//! naive n = 256 trials are capped separately because each costs tens of
//! seconds.

use netcon_bench::harness::scale;
use netcon_bench::speedup::compare_engines;
use netcon_protocols::{fast_global_line, simple_global_line};

fn main() {
    println!("=== Engine speedup: EventSim vs Simulation (same seeds) ===\n");

    let report = |name: &str, c: &netcon_bench::speedup::Comparison| {
        println!("{name} @ n={}:", c.n);
        println!(
            "  event : {:>4} trials, mean converged_at {:>14.0}, mean effective {:>12.0} ({:.1}% of steps), {:>8.3} s total",
            c.event.trials,
            c.event.mean_converged,
            c.event.mean_effective,
            100.0 * c.event.mean_effective / c.event.mean_steps,
            c.event.wall_s
        );
        println!(
            "  naive : {:>4} trials, mean converged_at {:>14.0}, {:>8.3} s total",
            c.naive.trials, c.naive.mean_converged, c.naive.wall_s
        );
        println!(
            "  speedup {:>8.1}x   mean agreement {:>6.2}%\n",
            c.speedup,
            100.0 * c.mean_rel_diff
        );
    };

    // Tight agreement check: both engines at full trial count, n = 64.
    // converged_at is heavy-tailed (relative sd ≈ 70–100%), so the check
    // is a Welch z on the means, asserted only at meaningful trial counts.
    let trials = scale(600).max(8);
    let c64 = compare_engines(
        &simple_global_line::protocol(),
        simple_global_line::is_stable,
        64,
        trials,
        trials,
        9,
    );
    report("Simple-Global-Line", &c64);
    if trials >= 100 {
        let t = trials as f64;
        let z = (c64.event.mean_converged - c64.naive.mean_converged)
            / (c64.event.var_converged / t + c64.naive.var_converged / t).sqrt();
        assert!(
            z.abs() < 4.5,
            "engines disagree at n=64: {z:.1}σ (event {:.0} vs naive {:.0})",
            c64.event.mean_converged,
            c64.naive.mean_converged
        );
    }

    // Acceptance point: n = 256, ≥ 100 event trials; naive trials capped
    // (each is ~10⁸ steps — ≈ 1 s in release).
    let naive256 = scale(8).clamp(2, 16);
    let c256 = compare_engines(
        &simple_global_line::protocol(),
        simple_global_line::is_stable,
        256,
        scale(200).max(100),
        naive256,
        9,
    );
    report("Simple-Global-Line", &c256);
    assert!(
        c256.speedup >= 50.0,
        "event engine speedup {:.1}x below the 50x acceptance bar",
        c256.speedup
    );

    let cfast = compare_engines(
        &fast_global_line::protocol(),
        fast_global_line::is_stable,
        256,
        scale(200).max(100),
        scale(20).clamp(2, 40),
        9,
    );
    report("Fast-Global-Line", &cfast);

    println!("(converged_at distributions are identical by construction; the");
    println!(" residual mean gaps above are sampling noise on the naive side —");
    println!(" BENCH_PR2.json records the large-sample agreement.)");
}
