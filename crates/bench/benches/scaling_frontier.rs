//! **Scaling frontier** — the population sizes the paper's asymptotics
//! are about, reachable only by the sparse bucket engine.
//!
//! Drives Simple-Global-Line (Θ(n⁴)–O(n⁵) sequential steps) and
//! Cycle-Cover (Θ(n²), optimal) to n ∈ {20 000, 50 000, 100 000} on
//! [`BucketSim`](netcon_core::BucketSim), reporting sequential steps,
//! effective interactions, wall-clock, and the engine's measured heap
//! footprint against the dense engine's a-priori estimate. The dense
//! pair map alone would need ~1.7 GB at n = 20 000 and ~43 GB at
//! n = 100 000; the bucket engine stays in single-digit megabytes.
//!
//! `NETCON_BENCH_SCALE` (percent) scales the *sizes* here, not trial
//! counts: CI smoke (1%) runs n ∈ {200, 500, 1000}, where the run also
//! cross-checks the engine selector (`Engine::auto` picks the dense
//! engine at smoke sizes, the sparse one at frontier sizes).

use std::time::Instant;

use netcon_bench::harness::scale;
use netcon_core::{BucketSim, CompiledTable, Engine, EventSim, SparsePop};
use netcon_protocols::{cycle_cover, simple_global_line};

fn drive(
    name: &str,
    protocol: &CompiledTable,
    sparse_stable: fn(&SparsePop) -> bool,
    sizes: &[usize],
) {
    println!("--- {name} ---");
    println!(
        "{:>8} {:>22} {:>14} {:>10} {:>12} {:>14}",
        "n", "sequential steps", "effective", "wall", "bucket mem", "dense est."
    );
    for &n in sizes {
        let t0 = Instant::now();
        let mut sim = BucketSim::new(protocol.clone(), n, 2014 + n as u64);
        let out = sim.run_until(sparse_stable, u64::MAX);
        let wall = t0.elapsed();
        let converged = out
            .converged_at()
            .unwrap_or_else(|| panic!("{name} did not stabilize at n={n}"));
        let mem = sim.approx_mem_bytes();
        assert!(
            mem < 100 << 20,
            "{name} n={n}: bucket engine used {mem} bytes, expected < 100 MB"
        );
        println!(
            "{n:>8} {converged:>22} {:>14} {:>9.2?} {:>9.1} MB {:>11.1} MB",
            sim.effective_steps(),
            wall,
            mem as f64 / 1e6,
            EventSim::<CompiledTable>::dense_mem_estimate(n) as f64 / 1e6,
        );
    }
    println!();
}

fn main() {
    println!("=== Scaling frontier: sparse bucket engine at n up to 100k ===\n");
    let sizes: Vec<usize> = [20_000usize, 50_000, 100_000]
        .iter()
        .map(|&n| scale(n).max(64))
        .collect();
    println!("sizes: {sizes:?} (NETCON_BENCH_SCALE percent applies to n)\n");

    // Selector cross-check at the first size: auto must pick the sparse
    // engine exactly when the dense estimate exceeds the budget.
    let n0 = sizes[0];
    let eng = Engine::auto(simple_global_line::protocol().compile(), n0, 1);
    let dense_fits = n0 <= usize::from(u16::MAX)
        && EventSim::<CompiledTable>::dense_mem_estimate(n0) <= Engine::<CompiledTable>::default_budget();
    assert_eq!(!eng.is_sparse(), dense_fits, "selector disagrees with budget");
    println!("Engine::auto(n = {n0}) -> {}\n", eng.kind());
    drop(eng);

    drive(
        "Simple-Global-Line (Protocol 1)",
        &simple_global_line::protocol().compile(),
        simple_global_line::is_stable_sparse,
        &sizes,
    );
    drive(
        "Cycle-Cover (Protocol 3)",
        &cycle_cover::protocol().compile(),
        cycle_cover::is_stable_sparse,
        &sizes,
    );

    println!("the Θ(n²) memory wall is gone: the frontier engine is O(n + |Q|²)");
}
