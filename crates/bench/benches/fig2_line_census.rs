//! **Figure 2** — a typical configuration of Simple-Global-Line while
//! converging: coexisting lines with `l`-endpoint leaders or walking `w`
//! leaders, plus isolated `q0` nodes. Regenerated as a census at fixed
//! fractions of the (retrospectively known) convergence time.

use netcon_core::Simulation;
use netcon_protocols::simple_global_line::{self, census};

fn main() {
    let n = 64;
    let seed = 7;
    println!("=== Fig. 2: Simple-Global-Line configuration census (n = {n}) ===\n");

    // First run: find the convergence step.
    let mut probe = Simulation::new(simple_global_line::protocol(), n, seed);
    let total = probe
        .run_until(simple_global_line::is_stable, u64::MAX)
        .converged_at()
        .expect("line protocol stabilizes");
    println!("convergence at {total} steps; censuses at 10%..100%:\n");

    println!(
        "{:>6}  {:>9} {:>13} {:>13} {:>22}",
        "%", "isolated", "l-led lines", "w-led lines", "line lengths"
    );
    let mut sim = Simulation::new(simple_global_line::protocol(), n, seed);
    for pct in [10u64, 25, 50, 75, 90, 100] {
        let target = total * pct / 100;
        while sim.steps() < target {
            sim.step();
        }
        let c = census(sim.population());
        println!(
            "{:>6}  {:>9} {:>13} {:>13}  {:?}",
            pct,
            c.isolated,
            c.lines_with_endpoint_leader,
            c.lines_with_walking_leader,
            c.line_lengths
        );
    }
}
