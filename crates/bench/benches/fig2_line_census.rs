//! **Figure 2** — a typical configuration of Simple-Global-Line while
//! converging: coexisting lines with `l`-endpoint leaders or walking `w`
//! leaders, plus isolated `q0` nodes. Regenerated as a census at fixed
//! fractions of the (retrospectively known) convergence time.
//!
//! Runs on the event-driven engine. Two passes over the *same seed*: the
//! probe finds the convergence step, then an identical replay (advance
//! calls consume the generator identically, so it is the same
//! realization) censuses the configuration at each fraction — the state
//! at a mark that falls inside a skip run is the state before the next
//! candidate, since skipped draws change nothing.

use netcon_core::{EventSim, EventStep};
use netcon_protocols::simple_global_line::{self, census, Census};

fn main() {
    let n = 128;
    let seed = 7;
    println!("=== Fig. 2: Simple-Global-Line configuration census (n = {n}) ===\n");

    // Pass 1: find the convergence step of this seed's execution.
    let mut probe = EventSim::new(simple_global_line::protocol().compile(), n, seed);
    let total = probe
        .run_until(simple_global_line::is_stable, u64::MAX)
        .converged_at()
        .expect("line protocol stabilizes");
    println!(
        "convergence at {total} steps ({} effective); censuses at 10%..100%:\n",
        probe.effective_steps()
    );

    println!(
        "{:>6}  {:>9} {:>13} {:>13} {:>22}",
        "%", "isolated", "l-led lines", "w-led lines", "line lengths"
    );
    let print_row = |pct: u64, c: &Census| {
        println!(
            "{:>6}  {:>9} {:>13} {:>13}  {:?}",
            pct,
            c.isolated,
            c.lines_with_endpoint_leader,
            c.lines_with_walking_leader,
            c.line_lengths
        );
    };

    // Pass 2: replay the identical realization and sample it at the marks.
    let marks: Vec<(u64, u64)> = [10u64, 25, 50, 75, 90, 100]
        .iter()
        .map(|&pct| (pct, total * pct / 100))
        .collect();
    let mut sim = EventSim::new(simple_global_line::protocol().compile(), n, seed);
    let mut mi = 0;
    let mut before = census(sim.population());
    while mi < marks.len() {
        match sim.advance(u64::MAX) {
            EventStep::Quiescent | EventStep::BudgetExhausted => break,
            EventStep::Candidate { .. } => {
                // Marks strictly inside the skip run show the pre-candidate
                // configuration; a mark on the candidate step shows the
                // post-candidate one.
                while mi < marks.len() && marks[mi].1 < sim.steps() {
                    print_row(marks[mi].0, &before);
                    mi += 1;
                }
                while mi < marks.len() && marks[mi].1 == sim.steps() {
                    print_row(marks[mi].0, &census(sim.population()));
                    mi += 1;
                }
                if mi < marks.len() {
                    before = census(sim.population());
                }
            }
        }
    }
    // The execution quiesced with marks outstanding (cannot happen for
    // marks ≤ total, but keep the loop total): the configuration is final.
    while mi < marks.len() {
        print_row(marks[mi].0, &census(sim.population()));
        mi += 1;
    }
}
