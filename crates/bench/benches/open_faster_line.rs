//! **§7 open question** — is Faster-Global-Line (Protocol 10)
//! asymptotically faster than Fast-Global-Line (Protocol 2)? The paper
//! reports experimental evidence of an improvement but leaves the
//! asymptotics open. Head-to-head sweep with exponent fits (and
//! Simple-Global-Line for context).

use netcon_analysis::sweep::{sweep, sweep_converged_at, SweepConfig};
use netcon_analysis::table::TextTable;
use netcon_bench::harness::{fits, fmt_fit, scale};
use netcon_core::{EventSim, Population, RuleProtocol, StateId};
use netcon_protocols::{fast_global_line, faster_global_line, simple_global_line};

fn sweep_protocol(
    protocol: RuleProtocol,
    stable: fn(&Population<StateId>) -> bool,
    sizes: Vec<usize>,
    trials: usize,
) -> netcon_analysis::sweep::SweepTable {
    let cfg = SweepConfig {
        sizes,
        trials,
        base_seed: 6,
    };
    // Event-driven path: the open-question comparison needs large-n
    // points, which the naive loop cannot reach in bounded time.
    sweep_converged_at(&cfg, &protocol, stable, u64::MAX)
}

fn main() {
    println!("=== §7 open question: Fast vs Faster global line ===\n");
    let trials = scale(12);
    let sizes = vec![12usize, 16, 24, 32, 48, 64, 96, 128];

    let fast = sweep_protocol(
        fast_global_line::protocol(),
        fast_global_line::is_stable,
        sizes.clone(),
        trials,
    );
    let faster = sweep_protocol(
        faster_global_line::protocol(),
        faster_global_line::is_stable,
        sizes.clone(),
        trials,
    );
    let simple = sweep_protocol(
        simple_global_line::protocol(),
        simple_global_line::is_stable,
        vec![8, 12, 16, 24, 32],
        trials,
    );

    let mut t = TextTable::new(&["n", "Fast (9 states)", "Faster (6 states)", "ratio"]);
    for (f, g) in fast.rows.iter().zip(&faster.rows) {
        t.row(&[
            &f.n.to_string(),
            &format!("{:.0}", f.summary.mean),
            &format!("{:.0}", g.summary.mean),
            &format!("{:.2}", f.summary.mean / g.summary.mean),
        ]);
    }
    println!("{}", t.render());
    // §7's other reference point: the pre-elected-leader line,
    // Θ(n² log n) — the price of leaderless construction in one column.
    let leader_cfg = SweepConfig {
        sizes: sizes.clone(),
        trials,
        base_seed: 6,
    };
    let leader_compiled = {
        use netcon_protocols::leader_line;
        leader_line::protocol().compile()
    };
    let leader = sweep(&leader_cfg, |n, seed| {
        use netcon_protocols::leader_line;
        let mut sim = EventSim::from_population(
            leader_compiled.clone(),
            leader_line::initial_population(n),
            seed,
        );
        sim.run_until(leader_line::is_stable, u64::MAX)
            .converged_at()
            .expect("leader line stabilizes") as f64
    });

    let (fit_fast, _) = fits(&fast);
    let (fit_faster, _) = fits(&faster);
    let (fit_simple, _) = fits(&simple);
    let (fit_leader, fit_leader_log) = fits(&leader);
    println!("exponent fits:");
    println!("  Simple-Global-Line: {}   (paper: Ω(n⁴), O(n⁵))", fmt_fit(&fit_simple));
    println!("  Fast-Global-Line:   {}   (paper: O(n³))", fmt_fit(&fit_fast));
    println!("  Faster-Global-Line: {}   (paper: open)", fmt_fit(&fit_faster));
    println!(
        "  Leader-Line (§7):   {} / log-corrected {}   (paper: Θ(n² log n) with a pre-elected leader)",
        fmt_fit(&fit_leader),
        fmt_fit(&fit_leader_log)
    );
    println!("\nratio > 1 at every n = the conjectured improvement; whether the");
    println!("exponents differ decides the open asymptotic question.");
}
