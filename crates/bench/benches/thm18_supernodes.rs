//! **Theorem 18** — partitioning into named supernodes: for exact
//! population sizes `1 + j·2^j` the organizer produces `2^j` lines of
//! length `j` with names exactly `{0, …, 2^j − 1}`; measured convergence
//! steps included.

use netcon_core::Simulation;
use netcon_universal::supernodes::{is_stable, supernodes_of, Supernodes};

fn main() {
    println!("=== Thm. 18: supernode organization ===\n");
    println!(
        "{:>4} {:>4} {:>8} {:>12} {:>14} {:>12}",
        "n", "j", "k = 2^j", "lines found", "names 0..k?", "mean steps"
    );
    for j in [1u32, 2, 3] {
        let n = 1 + (j as usize) * (1usize << j);
        let trials = 5;
        let mut steps = 0u64;
        let mut all_ok = true;
        let mut lines = 0usize;
        for seed in 0..trials {
            let mut sim = Simulation::new(Supernodes, n, seed);
            let out = sim.run_until(is_stable, u64::MAX);
            steps += out.last_effective().expect("organizer stabilizes");
            let mut sns = supernodes_of(sim.population(), j as u16);
            sns.sort_by_key(|s| s.name);
            lines = sns.len();
            let names: Vec<u32> = sns.iter().map(|s| s.name).collect();
            let expect: Vec<u32> = (0..1u32 << j).collect();
            all_ok &= names == expect;
        }
        println!(
            "{n:>4} {j:>4} {:>8} {lines:>12} {all_ok:>14} {:>12.0}",
            1 << j,
            steps as f64 / f64::from(trials as u32)
        );
    }
    println!("\neach phase doubles the line count; names are stored bitwise in the");
    println!("members (bit p at position p), giving every supernode ⌈log k⌉ memory.");
}
