//! **Figures 7–8** — the (U, D, M) partition of Theorem 15: census after
//! stabilization (|U| = |D| = |M| = ⌊n/3⌋ with the Fig. 7 triple shape)
//! and the convergence-time sweep.

use netcon_analysis::sweep::{sweep, SweepConfig};
use netcon_analysis::table::TextTable;
use netcon_bench::harness::{fits, fmt_fit, scale};
use netcon_core::Simulation;
use netcon_universal::partition::{udm_census, udm_is_stable, udm_protocol};

fn main() {
    println!("=== Figs. 7–8: (U, D, M) partition (Theorem 15) ===\n");
    let mut t = TextTable::new(&["n", "|U|", "|D|", "|M|", "residue", "triples ok"]);
    for n in [9usize, 16, 24, 48, 96] {
        let mut sim = Simulation::new(udm_protocol(), n, 13);
        sim.run_until(udm_is_stable, u64::MAX);
        let c = udm_census(sim.population());
        t.row(&[
            &n.to_string(),
            &c.u.to_string(),
            &c.d.to_string(),
            &c.m.to_string(),
            &c.residue.to_string(),
            &c.triples_ok.to_string(),
        ]);
    }
    println!("{}", t.render());

    let cfg = SweepConfig {
        sizes: vec![12, 24, 48, 96, 144],
        trials: scale(15),
        base_seed: 5,
    };
    let table = sweep(&cfg, |n, seed| {
        let mut sim = Simulation::new(udm_protocol(), n, seed);
        sim.run_until(udm_is_stable, u64::MAX)
            .converged_at()
            .expect("partition stabilizes") as f64
    });
    let (raw, corrected) = fits(&table);
    println!(
        "convergence fit: n^k {} / n^k·log n {}",
        fmt_fit(&raw),
        fmt_fit(&corrected)
    );
}
