//! **Figure 1** — the spanning-star self-assembly snapshots, as a data
//! series: number of surviving centres ("blacks"), centre–peripheral
//! edges, and peripheral–peripheral residue edges over the course of one
//! seeded execution, with the three qualitative snapshots (a)/(b)/(c)
//! the paper draws.
//!
//! Runs on the event-driven engine: [`EventSim::advance`] with the next
//! power-of-two mark as its budget lands the step counter on each mark
//! exactly (the skipped draws are ineffective, so the census at the mark
//! is the census the naive loop would print).

use netcon_core::{EventSim, EventStep, StepResult};
use netcon_protocols::global_star::{self, C, P};

fn main() {
    let n = 192;
    let mut sim = EventSim::new(global_star::protocol().compile(), n, 2014);
    println!("=== Fig. 1: star formation time series (n = {n}) ===\n");
    println!("{:>9}  {:>7} {:>12} {:>12}", "step", "blacks", "black-red", "red-red");

    let print_state = |sim: &EventSim<netcon_core::CompiledTable>, label: &str| {
        let pop = sim.population();
        let blacks = pop.count_where(|s| *s == C);
        let br = pop
            .edges()
            .active_edges()
            .filter(|&(u, v)| (*pop.state(u) == C) != (*pop.state(v) == C))
            .count();
        let rr = pop
            .edges()
            .active_edges()
            .filter(|&(u, v)| *pop.state(u) == P && *pop.state(v) == P)
            .count();
        println!("{:>9}  {:>7} {:>12} {:>12}  {label}", sim.steps(), blacks, br, rr);
    };

    print_state(&sim, "(a) initial: all black, no edges");
    let mut next_mark = 1u64;
    let mut seen_three = false;
    loop {
        match sim.advance(next_mark) {
            EventStep::BudgetExhausted => {
                // Exactly at the mark: print the census and extend the
                // horizon.
                print_state(&sim, "");
                next_mark *= 2;
            }
            EventStep::Candidate {
                result: StepResult::Effective { .. },
                ..
            } => {
                if sim.steps() == next_mark {
                    print_state(&sim, "");
                    next_mark *= 2;
                }
                let blacks = sim.population().count_where(|s| *s == C);
                if blacks == 3 && !seen_three {
                    seen_three = true;
                    print_state(&sim, "(b) three blacks with red neighbourhoods");
                }
                if global_star::is_stable(sim.population()) {
                    print_state(&sim, "(c) stable spanning star");
                    break;
                }
            }
            EventStep::Candidate { .. } => {}
            EventStep::Quiescent => unreachable!("the star protocol cannot quiesce before (c)"),
        }
    }
    println!(
        "\nverified: is_spanning_star = {} ({} effective / {} total steps)",
        netcon_graph::properties::is_spanning_star(sim.population().edges()),
        sim.effective_steps(),
        sim.steps()
    );
}
