//! **Figure 1** — the spanning-star self-assembly snapshots, as a data
//! series: number of surviving centres ("blacks"), centre–peripheral
//! edges, and peripheral–peripheral residue edges over the course of one
//! seeded execution, with the three qualitative snapshots (a)/(b)/(c)
//! the paper draws.

use netcon_core::{Simulation, StepResult};
use netcon_protocols::global_star::{self, C, P};

fn main() {
    let n = 48;
    let mut sim = Simulation::new(global_star::protocol(), n, 2014);
    println!("=== Fig. 1: star formation time series (n = {n}) ===\n");
    println!("{:>9}  {:>7} {:>12} {:>12}", "step", "blacks", "black-red", "red-red");

    let print_state = |sim: &Simulation<netcon_core::RuleProtocol>, label: &str| {
        let pop = sim.population();
        let blacks = pop.count_where(|s| *s == C);
        let br = pop
            .edges()
            .active_edges()
            .filter(|&(u, v)| (*pop.state(u) == C) != (*pop.state(v) == C))
            .count();
        let rr = pop
            .edges()
            .active_edges()
            .filter(|&(u, v)| *pop.state(u) == P && *pop.state(v) == P)
            .count();
        println!("{:>9}  {:>7} {:>12} {:>12}  {label}", sim.steps(), blacks, br, rr);
    };

    print_state(&sim, "(a) initial: all black, no edges");
    let mut next_mark = 1u64;
    loop {
        let r = sim.step();
        if sim.steps() == next_mark {
            print_state(&sim, "");
            next_mark *= 2;
        }
        if let StepResult::Effective { .. } = r {
            let blacks = sim.population().count_where(|s| *s == C);
            if blacks == 3 {
                print_state(&sim, "(b) three blacks with red neighbourhoods");
            }
            if global_star::is_stable(sim.population()) {
                print_state(&sim, "(c) stable spanning star");
                break;
            }
        }
    }
    println!(
        "\nverified: is_spanning_star = {}",
        netcon_graph::properties::is_spanning_star(sim.population().edges())
    );
}
