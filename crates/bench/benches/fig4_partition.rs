//! **Figure 4** — the U–D partition with its perfect matching: census
//! after stabilization across sizes, plus convergence-time sweep of the
//! single-rule partition protocol (a maximum-matching process: Θ(n²)).

use netcon_analysis::sweep::{sweep, SweepConfig};
use netcon_analysis::table::TextTable;
use netcon_bench::harness::{fits, fmt_fit, scale};
use netcon_core::Simulation;
use netcon_universal::partition::{ud_census, ud_is_stable, ud_protocol};

fn main() {
    println!("=== Fig. 4: U–D partition (Theorem 14, phase 1) ===\n");
    let mut t = TextTable::new(&["n", "|U|", "|D|", "unmatched", "matching ok"]);
    for n in [8usize, 16, 32, 64, 101] {
        let mut sim = Simulation::new(ud_protocol(), n, 11);
        sim.run_until(ud_is_stable, u64::MAX);
        let c = ud_census(sim.population());
        t.row(&[
            &n.to_string(),
            &c.u.to_string(),
            &c.d.to_string(),
            &c.unmatched.to_string(),
            &c.matching_ok.to_string(),
        ]);
    }
    println!("{}", t.render());

    let cfg = SweepConfig {
        sizes: vec![16, 32, 64, 128, 192],
        trials: scale(20),
        base_seed: 4,
    };
    let table = sweep(&cfg, |n, seed| {
        let mut sim = Simulation::new(ud_protocol(), n, seed);
        sim.run_until(ud_is_stable, u64::MAX)
            .converged_at()
            .expect("partition stabilizes") as f64
    });
    let (raw, corrected) = fits(&table);
    println!(
        "partition convergence: fit n^k {} / n^k·log n {} (theory: maximum matching, Θ(n²))",
        fmt_fit(&raw),
        fmt_fit(&corrected)
    );
}
