//! **Churn frontier** — availability sweeps over the continuous-churn
//! layer: compile a seeded Poisson arrival/departure stream
//! ([`ChurnPlan`](netcon_core::ChurnPlan)) and measure the fraction of
//! draws on which the constructor's output was stable
//! (`netcon_analysis::availability`).
//!
//! Two workloads, the fault-tolerant constructors of arXiv 1903.05992:
//!
//! 1. *FT-Global-Star* — crash notifications re-mint peripherals as
//!    centre candidates, so the star re-elects through **any** crash
//!    pattern; at gentle rates it is mostly up, giving a high-availability
//!    reference curve.
//! 2. *FT-Spanning-Line* — the restart/waste wave dissolves damaged
//!    fragments back to `q0` before rebuilding, so each crash costs a
//!    full reconstruction; its lower availability at the same rates is
//!    the measured price of the waste-based repair.
//!
//! `NETCON_CHURN_RATE` sets the symmetric per-draw arrival *and*
//! departure rate (default `1e-4`); `NETCON_CHURN_TRIALS` overrides the
//! trial count (default rides `NETCON_BENCH_SCALE` like every other
//! target).

use netcon_analysis::availability::sweep_availability;
use netcon_analysis::sweep::{SweepConfig, SweepTable};
use netcon_bench::harness::scale;
use netcon_core::ChurnPlan;
use netcon_protocols::{ft_line, ft_star};

/// The symmetric per-draw churn rate from `NETCON_CHURN_RATE`, default
/// `1e-4` (one arrival *and* one departure expected every 10k draws).
fn rate_from_env() -> f64 {
    match std::env::var("NETCON_CHURN_RATE") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|e| panic!("invalid NETCON_CHURN_RATE {s:?}: {e}")),
        Err(_) => 1e-4,
    }
}

/// Trials per size: `NETCON_CHURN_TRIALS`, else bench-scaled.
fn trials_from_env() -> usize {
    std::env::var("NETCON_CHURN_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| scale(40).max(4))
}

fn report(name: &str, rate: f64, horizon: u64, table: &SweepTable) {
    println!("{name} (rate {rate:e}/draw each way, horizon {horizon} draws):");
    for row in &table.rows {
        println!(
            "  n={:>4}: mean fraction available {:>6.3} (sd {:>6.3}, min {:>6.3}, {} trials)",
            row.n,
            row.summary.mean,
            row.summary.std_dev,
            row.summary.min,
            row.summary.count
        );
        for &s in &row.samples {
            assert!((0.0..=1.0).contains(&s), "{name} n={}: fraction {s}", row.n);
        }
    }
    println!();
}

fn main() {
    println!("=== Churn frontier: availability under sustained Poisson churn ===\n");
    let rate = rate_from_env();
    let trials = trials_from_env();

    // FT-star converges in Θ(n² log n) draws, so at these sizes the
    // 60k-draw horizon holds many stable windows between events.
    let star_horizon = 60_000u64;
    let star_cfg = SweepConfig {
        sizes: vec![16, 32],
        trials,
        base_seed: 83,
    };
    let star_churn = ChurnPlan::new(0)
        .arrival_rate(rate)
        .departure_rate(rate)
        .min_alive(8)
        .horizon(star_horizon);
    let star = sweep_availability(
        &star_cfg,
        &ft_star::protocol(),
        star_churn,
        ft_star::is_stable_faulted,
        u64::MAX,
    );
    report("ft-global-star", rate, star_horizon, &star);

    // The line pays Θ(n⁴)-ish reconstruction per restart wave, so it
    // runs smaller and longer: the horizon still dwarfs a rebuild.
    let line_horizon = 150_000u64;
    let line_cfg = SweepConfig {
        sizes: vec![10, 14],
        trials,
        base_seed: 89,
    };
    let line_churn = ChurnPlan::new(0)
        .arrival_rate(rate)
        .departure_rate(rate)
        .min_alive(5)
        .horizon(line_horizon);
    let line = sweep_availability(
        &line_cfg,
        &ft_line::protocol(),
        line_churn,
        ft_line::is_stable_faulted,
        u64::MAX,
    );
    report("ft-spanning-line", rate, line_horizon, &line);

    // The star's notified re-election must beat the line's restart wave
    // at every common scale — that ordering is the section's physical
    // claim, so the bench enforces it on the means.
    let star_mean = star.rows[0].summary.mean;
    let line_mean = line.rows.last().expect("line rows").summary.mean;
    assert!(
        star_mean >= line_mean,
        "FT-star (n=16 mean {star_mean:.3}) should be at least as available as \
         FT-line (n=14 mean {line_mean:.3}) at the same rates"
    );
    println!("star re-election at least as available as line restart wave — ordering confirmed");
}
