//! **Theorem 3 (w.h.p. claim)** — Simple-Global-Line creates Θ(n)
//! disjoint length-1 lines over its execution: at least
//! `(n − 2√(c·n·ln n) − 2)/16` with probability `> 1 − n^{−c}`. Measured
//! fresh-line counts against that bound.

use netcon_analysis::stats::Summary;
use netcon_bench::harness::scale;
use netcon_protocols::simple_global_line::count_fresh_lines;

fn main() {
    println!("=== Thm. 3: fresh length-1 lines created by Simple-Global-Line ===\n");
    println!(
        "{:>4} {:>14} {:>10} {:>10} {:>16}",
        "n", "mean fresh", "min", "max", "bound (c=1)/16"
    );
    let trials = scale(15) as u64;
    for n in [16usize, 32, 64, 96, 128] {
        let samples: Vec<f64> = (0..trials)
            .map(|seed| count_fresh_lines(n, seed, u64::MAX) as f64)
            .collect();
        let s = Summary::of(&samples);
        let nf = n as f64;
        let bound = (nf - 2.0 * (nf * nf.ln()).sqrt() - 2.0) / 16.0;
        println!(
            "{n:>4} {:>14.1} {:>10.0} {:>10.0} {:>16.1}",
            s.mean, s.min, s.max, bound
        );
    }
    println!("\nmeasured counts are linear in n and comfortably above the bound");
    println!("(the bound is loose by design — it feeds the Ω(n⁴) argument).");
}
